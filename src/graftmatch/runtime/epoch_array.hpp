// Epoch-versioned per-vertex state, word-packed atomic bitmaps, and
// first-touch buffers.
//
// MS-BFS-Graft keeps its alternating forest alive across phases, but the
// bookkeeping around it (visited flags, root validity, leaf freshness)
// still needs per-phase and per-pass invalidation. Invalidating by
// clearing an O(n) array every phase erases the algorithmic win on
// phase-heavy graphs, where a phase may touch only a handful of
// vertices. The containers here make invalidation O(1):
//
//  * EpochStamps -- a stamp per slot plus a current epoch; a slot is
//    valid iff its stamp equals the epoch, so "clear everything" is one
//    epoch bump. Stamps are 32-bit; the (unreachable in practice) wrap
//    after ~4e9 bumps falls back to a hard clear so stale stamps can
//    never alias a future epoch.
//
//  * AtomicBitmap -- 64 flags per word with an exactly-once claim
//    (fetch_or, same contract as claim_flag) and single-load tests.
//    One cache line covers 512 vertices, which is what makes the
//    bottom-up inner loop's membership test cheap, and whole-bitmap
//    clears touch 1/64th of the memory a byte array would.
//
//  * FirstTouchBuffer -- fixed-capacity storage allocated WITHOUT the
//    serial value-initialization std::vector performs on resize, so the
//    parallel fill that follows allocation is what faults the pages in
//    (the Graph500-style NUMA placement the paper relies on; on one
//    socket it degenerates to a parallel fill).
//
// All three are built to be REUSED: a GraftWorkspace holds them across
// runs, and reset paths only pay O(n) when dimensions actually change.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/parallel.hpp"

namespace graftmatch {

/// Trivially-copyable array whose pages are faulted by the parallel
/// fill, not by allocation. Growing reallocates (old contents dropped);
/// shrinking keeps the allocation and narrows the logical size.
template <typename T>
class FirstTouchBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Resize to `n` slots without initializing them. Returns true when
  /// the call had to allocate (callers then know a parallel fill will
  /// be the first touch of those pages).
  bool resize_uninit(std::size_t n) {
    const bool grew = n > capacity_;
    if (grew) {
      data_.reset(new T[n]);  // default-init: trivial T stays untouched
      capacity_ = n;
    }
    size_ = n;
    return grew;
  }

  /// Resize and parallel-fill every slot with `value`.
  void resize_fill(std::size_t n, const T& value) {
    resize_uninit(n);
    fill(value);
  }

  /// Parallel first-touch fill of the logical range.
  void fill(const T& value) { first_touch_fill(data_.get(), size_, value); }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* data() noexcept { return data_.get(); }
  const T* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }

  std::span<T> span() noexcept { return {data_.get(), size_}; }
  std::span<const T> span() const noexcept { return {data_.get(), size_}; }

 private:
  std::unique_ptr<T[]> data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Validity stamps for a parallel array: slot i is "set" iff
/// stamps[i] == epoch. bump() invalidates every slot in O(1).
///
/// Concurrency contract: stamp_release/valid_acquire pair a stamp with
/// payload words written before it (store payload, release-stamp;
/// acquire-valid, read payload) -- on x86 both compile to plain moves.
/// stamp()/clear()/valid() are for single-owner or serially-read slots.
/// bump() and resets are serial-only.
class EpochStamps {
 public:
  /// (Re)size to `n` slots, all invalid, pages first-touched in
  /// parallel. Serial-only.
  void reset(std::size_t n) {
    stamps_.resize_fill(n, 0u);
    epoch_ = 1;
  }

  /// Invalidate every slot. O(1) except at the 32-bit wrap, where the
  /// stamps are hard-cleared so old stamps cannot alias the new epoch.
  void bump() {
    if (++epoch_ == 0) {
      stamps_.fill(0u);
      epoch_ = 1;
    }
  }

  bool valid(std::size_t i) const noexcept {
    return relaxed_load(stamps_[i]) == epoch_;
  }
  /// Acquire flavor: a true result orders the caller after the payload
  /// stores that preceded the matching stamp_release.
  bool valid_acquire(std::size_t i) const noexcept {
    return std::atomic_ref<const std::uint32_t>(stamps_[i]).load(
               std::memory_order_acquire) == epoch_;
  }

  void stamp(std::size_t i) noexcept { relaxed_store(stamps_[i], epoch_); }
  /// Release flavor: publishes payload stores made before this call to
  /// any thread that observes validity through valid_acquire.
  void stamp_release(std::size_t i) noexcept {
    std::atomic_ref<std::uint32_t>(stamps_[i]).store(
        epoch_, std::memory_order_release);
  }

  /// Invalidate one slot (single-owner or serial contexts).
  void clear(std::size_t i) noexcept { relaxed_store(stamps_[i], 0u); }

  std::size_t size() const noexcept { return stamps_.size(); }

 private:
  FirstTouchBuffer<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 1;
};

/// Word-packed bitmap over [0, n) with atomic exactly-once claims.
class AtomicBitmap {
 public:
  static constexpr std::size_t kBitsPerWord = 64;

  /// (Re)size to `n` bits, all zero, pages first-touched in parallel.
  /// Serial-only.
  void reset(std::size_t n) {
    bits_ = n;
    words_.resize_fill((n + kBitsPerWord - 1) / kBitsPerWord,
                       std::uint64_t{0});
  }

  /// Zero every word (parallel fill, 1/64th of a byte-array clear).
  /// Serial-only.
  void clear_all() { words_.fill(std::uint64_t{0}); }

  bool test(std::size_t i) const noexcept {
    return (relaxed_load(words_[i / kBitsPerWord]) >>
            (i % kBitsPerWord)) & 1u;
  }

  /// Exactly-once claim of bit i (atomic, acq_rel): true iff this call
  /// performed the 0 -> 1 transition. The claim_flag contract on bits.
  bool claim(std::size_t i) noexcept {
    return claim_bit(words_[i / kBitsPerWord],
                     std::uint64_t{1} << (i % kBitsPerWord));
  }

  /// Set / clear without claiming. Atomic RMW (relaxed) because 64
  /// neighbors share each word even when each BIT has a single owner.
  void set(std::size_t i) noexcept {
    fetch_or_relaxed(words_[i / kBitsPerWord],
                     std::uint64_t{1} << (i % kBitsPerWord));
  }
  void clear(std::size_t i) noexcept {
    fetch_and_relaxed(words_[i / kBitsPerWord],
                      ~(std::uint64_t{1} << (i % kBitsPerWord)));
  }

  /// Plain (non-atomic) set / clear for serial sections between
  /// parallel passes; the region fork orders them before any parallel
  /// reader.
  void set_serial(std::size_t i) noexcept {
    words_[i / kBitsPerWord] |= std::uint64_t{1} << (i % kBitsPerWord);
  }
  void clear_serial(std::size_t i) noexcept {
    words_[i / kBitsPerWord] &= ~(std::uint64_t{1} << (i % kBitsPerWord));
  }

  /// Word-granular exactly-once claim: set every bit of `mask` in word
  /// `w` that is still zero and return the subset this call won (each
  /// returned bit made its own 0 -> 1 transition here). One CAS covers
  /// up to 64 claims, which is what the word-level bottom-up kernel
  /// trades 64 fetch_or's for. Under sustained contention the CAS loop
  /// gives up after kClaimWordRetries failures and degrades to per-bit
  /// claim() -- same result, existing-path cost -- so a hot word can
  /// never livelock; `fell_back` (optional) reports that degradation
  /// for the `direction` stats block. The winning CAS is acq_rel like
  /// claim(): it publishes the claimer's subsequent tree-pointer writes.
  static constexpr int kClaimWordRetries = 4;
  std::uint64_t claim_word(std::size_t w, std::uint64_t mask,
                           bool* fell_back = nullptr) noexcept {
    if (fell_back) *fell_back = false;
    if (mask == 0) return 0;
    std::uint64_t& word = words_[w];
    std::atomic_ref<std::uint64_t> ref(word);
    std::uint64_t old = ref.load(std::memory_order_relaxed);
    for (int attempt = 0; attempt < kClaimWordRetries; ++attempt) {
      const std::uint64_t want = mask & ~old;
      if (want == 0) return 0;
      stress::maybe_yield();  // widen the read-to-CAS window under stress
      if (ref.compare_exchange_weak(old, old | want,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
        return want;
      }
      // old was reloaded by the failed CAS; retry against the new view.
    }
    if (fell_back) *fell_back = true;
    std::uint64_t won = 0;
    std::uint64_t pending = mask & ~old;
    while (pending != 0) {
      const std::uint64_t bit = pending & (~pending + 1);
      pending &= pending - 1;
      if (claim_bit(word, bit)) won |= bit;
    }
    return won;
  }

  /// Serial counterpart of claim_word for single-thread teams.
  std::uint64_t claim_word_serial(std::size_t w, std::uint64_t mask) noexcept {
    std::uint64_t& word = words_[w];
    const std::uint64_t won = mask & ~word;
    word |= won;
    return won;
  }

  /// claim()'s exactly-once result without the locked RMW, for
  /// single-thread teams (the kernels' serial_team() fast paths) where
  /// test-then-set is trivially exactly-once.
  bool claim_serial(std::size_t i) noexcept {
    std::uint64_t& word = words_[i / kBitsPerWord];
    const std::uint64_t mask = std::uint64_t{1} << (i % kBitsPerWord);
    if (word & mask) return false;
    word |= mask;
    return true;
  }

  std::size_t size() const noexcept { return bits_; }
  std::span<const std::uint64_t> words() const noexcept {
    return {words_.data(), words_.size()};
  }
  std::size_t word_count() const noexcept { return words_.size(); }
  /// Relaxed atomic load of one packed word -- the word-level kernel's
  /// scan read, racing benignly with concurrent claims (a stale zero
  /// bit only sends the scanner into claim_word, which re-checks).
  std::uint64_t load_word(std::size_t w) const noexcept {
    return relaxed_load(words_[w]);
  }

 private:
  FirstTouchBuffer<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

}  // namespace graftmatch
