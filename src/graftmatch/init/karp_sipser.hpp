// Karp-Sipser maximal-matching initializer.
//
// The paper initializes every maximum-matching algorithm with
// Karp-Sipser (Sec. II-B), "one of the best initializer algorithms for
// cardinality matching". The algorithm repeatedly matches a degree-1
// vertex to its unique neighbor (a provably safe choice), falling back
// to a random edge when no degree-1 vertex exists. Degrees are counted
// with respect to the shrinking unmatched subgraph.
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

struct KarpSipserStats {
  std::int64_t degree_one_matches = 0;  ///< matches made by the safe rule
  std::int64_t random_matches = 0;      ///< matches made by the random rule
  double seconds = 0.0;
};

/// Serial Karp-Sipser. Returns a maximal matching; the `stats` out-param
/// (optional) records how many matches each rule made.
Matching karp_sipser(const BipartiteGraph& g, std::uint64_t seed = 1,
                     KarpSipserStats* stats = nullptr);

/// Cheap Karp-Sipser variant (KSR1, after Duff, Kaya & Ucar's taxonomy
/// of initializers): the degree-1 cascade is applied exhaustively ONLY
/// up front; the remaining 2-core is matched by plain index-order greedy
/// with no further cascading. Faster and lower quality than full KS --
/// the middle ground the initializer ablation measures.
Matching karp_sipser_rule1(const BipartiteGraph& g,
                           KarpSipserStats* stats = nullptr);

}  // namespace graftmatch
