// Multithreaded Karp-Sipser-style initializer (after Azad, Halappanavar,
// Rajamanickam et al.'s parallel maximal matching work, which the paper
// cites as [4]).
//
// Rounds alternate between (a) a parallel sweep matching current
// degree-1 vertices (the safe rule) and (b) a parallel greedy sweep over
// remaining unmatched X vertices (the random rule). Mates are claimed
// with compare-and-swap; residual degrees are maintained with relaxed
// atomic decrements. A final serial sweep guarantees maximality.
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

/// Parallel Karp-Sipser. `threads <= 0` keeps the OpenMP default.
Matching parallel_karp_sipser(const BipartiteGraph& g, std::uint64_t seed = 1,
                              int threads = 0);

}  // namespace graftmatch
