#include "graftmatch/init/karp_sipser.hpp"

#include <utility>
#include <vector>

#include "graftmatch/runtime/prng.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

// Encode (side, vertex) into one id: X vertices as-is, Y vertices
// shifted by nx. Keeps the degree-1 work queue homogeneous.
struct Encoded {
  static vid_t x(vid_t v) { return v; }
  static vid_t y(vid_t v, vid_t nx) { return v + nx; }
};

}  // namespace

Matching karp_sipser(const BipartiteGraph& g, std::uint64_t seed,
                     KarpSipserStats* stats) {
  const Timer timer;
  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();
  Matching matching(nx, ny);
  Xoshiro256 rng(seed);

  // Residual degree = number of unmatched neighbors; starts at full
  // degree and is decremented lazily as endpoints get matched.
  std::vector<eid_t> deg_x(static_cast<std::size_t>(nx));
  std::vector<eid_t> deg_y(static_cast<std::size_t>(ny));
  for (vid_t x = 0; x < nx; ++x) {
    deg_x[static_cast<std::size_t>(x)] = g.degree_x(x);
  }
  for (vid_t y = 0; y < ny; ++y) {
    deg_y[static_cast<std::size_t>(y)] = g.degree_y(y);
  }

  std::vector<vid_t> degree_one;
  degree_one.reserve(static_cast<std::size_t>(nx + ny) / 8);
  for (vid_t x = 0; x < nx; ++x) {
    if (deg_x[static_cast<std::size_t>(x)] == 1) {
      degree_one.push_back(Encoded::x(x));
    }
  }
  for (vid_t y = 0; y < ny; ++y) {
    if (deg_y[static_cast<std::size_t>(y)] == 1) {
      degree_one.push_back(Encoded::y(y, nx));
    }
  }

  std::int64_t rule1 = 0;
  std::int64_t rule2 = 0;

  // After matching (x, y), retire both endpoints: decrement residual
  // degrees of their unmatched neighbors and enqueue new degree-1s.
  const auto retire = [&](vid_t x, vid_t y) {
    for (const vid_t w : g.neighbors_of_x(x)) {
      if (!matching.is_matched_y(w) &&
          --deg_y[static_cast<std::size_t>(w)] == 1) {
        degree_one.push_back(Encoded::y(w, nx));
      }
    }
    for (const vid_t w : g.neighbors_of_y(y)) {
      if (!matching.is_matched_x(w) &&
          --deg_x[static_cast<std::size_t>(w)] == 1) {
        degree_one.push_back(Encoded::x(w));
      }
    }
  };

  const auto first_unmatched_y = [&](vid_t x) -> vid_t {
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (!matching.is_matched_y(y)) return y;
    }
    return kInvalidVertex;
  };
  const auto first_unmatched_x = [&](vid_t y) -> vid_t {
    for (const vid_t x : g.neighbors_of_y(y)) {
      if (!matching.is_matched_x(x)) return x;
    }
    return kInvalidVertex;
  };

  // Drain the degree-1 queue; entries may be stale (vertex already
  // matched or its residual degree changed), so re-check on pop.
  const auto drain_degree_one = [&] {
    while (!degree_one.empty()) {
      const vid_t id = degree_one.back();
      degree_one.pop_back();
      if (id < nx) {
        const vid_t x = id;
        if (matching.is_matched_x(x) ||
            deg_x[static_cast<std::size_t>(x)] != 1) {
          continue;
        }
        const vid_t y = first_unmatched_y(x);
        if (y == kInvalidVertex) continue;
        matching.match(x, y);
        ++rule1;
        retire(x, y);
      } else {
        const vid_t y = id - nx;
        if (matching.is_matched_y(y) ||
            deg_y[static_cast<std::size_t>(y)] != 1) {
          continue;
        }
        const vid_t x = first_unmatched_x(y);
        if (x == kInvalidVertex) continue;
        matching.match(x, y);
        ++rule1;
        retire(x, y);
      }
    }
  };

  // Random rule: visit X vertices in a random order; whenever the
  // degree-1 queue is non-empty the safe rule takes priority.
  std::vector<vid_t> order(static_cast<std::size_t>(nx));
  for (vid_t x = 0; x < nx; ++x) order[static_cast<std::size_t>(x)] = x;
  for (vid_t i = nx - 1; i > 0; --i) {
    const auto j =
        static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(j)]);
  }

  drain_degree_one();
  for (const vid_t x : order) {
    if (!matching.is_matched_x(x)) {
      const vid_t y = first_unmatched_y(x);
      if (y != kInvalidVertex) {
        matching.match(x, y);
        ++rule2;
        retire(x, y);
        drain_degree_one();
      }
    }
  }

  if (stats != nullptr) {
    stats->degree_one_matches = rule1;
    stats->random_matches = rule2;
    stats->seconds = timer.elapsed();
  }
  return matching;
}

Matching karp_sipser_rule1(const BipartiteGraph& g, KarpSipserStats* stats) {
  const Timer timer;
  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();
  Matching matching(nx, ny);

  std::vector<eid_t> deg_x(static_cast<std::size_t>(nx));
  std::vector<eid_t> deg_y(static_cast<std::size_t>(ny));
  for (vid_t x = 0; x < nx; ++x) {
    deg_x[static_cast<std::size_t>(x)] = g.degree_x(x);
  }
  for (vid_t y = 0; y < ny; ++y) {
    deg_y[static_cast<std::size_t>(y)] = g.degree_y(y);
  }

  std::vector<vid_t> degree_one;
  for (vid_t x = 0; x < nx; ++x) {
    if (deg_x[static_cast<std::size_t>(x)] == 1) {
      degree_one.push_back(Encoded::x(x));
    }
  }
  for (vid_t y = 0; y < ny; ++y) {
    if (deg_y[static_cast<std::size_t>(y)] == 1) {
      degree_one.push_back(Encoded::y(y, nx));
    }
  }

  std::int64_t rule1 = 0;
  const auto retire = [&](vid_t x, vid_t y) {
    for (const vid_t w : g.neighbors_of_x(x)) {
      if (!matching.is_matched_y(w) &&
          --deg_y[static_cast<std::size_t>(w)] == 1) {
        degree_one.push_back(Encoded::y(w, nx));
      }
    }
    for (const vid_t w : g.neighbors_of_y(y)) {
      if (!matching.is_matched_x(w) &&
          --deg_x[static_cast<std::size_t>(w)] == 1) {
        degree_one.push_back(Encoded::x(w));
      }
    }
  };

  // Phase 1: the safe rule, cascaded to fixpoint.
  while (!degree_one.empty()) {
    const vid_t id = degree_one.back();
    degree_one.pop_back();
    if (id < nx) {
      const vid_t x = id;
      if (matching.is_matched_x(x) || deg_x[static_cast<std::size_t>(x)] != 1)
        continue;
      for (const vid_t y : g.neighbors_of_x(x)) {
        if (!matching.is_matched_y(y)) {
          matching.match(x, y);
          ++rule1;
          retire(x, y);
          break;
        }
      }
    } else {
      const vid_t y = id - nx;
      if (matching.is_matched_y(y) || deg_y[static_cast<std::size_t>(y)] != 1)
        continue;
      for (const vid_t x : g.neighbors_of_y(y)) {
        if (!matching.is_matched_x(x)) {
          matching.match(x, y);
          ++rule1;
          retire(x, y);
          break;
        }
      }
    }
  }

  // Phase 2: plain greedy over the remaining 2-core, no cascading.
  std::int64_t rule2 = 0;
  for (vid_t x = 0; x < nx; ++x) {
    if (matching.is_matched_x(x)) continue;
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (!matching.is_matched_y(y)) {
        matching.match(x, y);
        ++rule2;
        break;
      }
    }
  }

  if (stats != nullptr) {
    stats->degree_one_matches = rule1;
    stats->random_matches = rule2;
    stats->seconds = timer.elapsed();
  }
  return matching;
}

}  // namespace graftmatch
