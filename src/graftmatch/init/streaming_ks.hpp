// Single-pass streaming maximal-matching initializer (Skipper-style).
//
// The dynamic-matching ingestion path (src/graftmatch/dynamic/) sees
// edges as a stream, before any CSR exists. Skipper ("Maximal Matching
// with a Single Pass over Edges", see PAPERS.md) shows that one pass is
// enough for a maximal matching: match an arriving edge immediately
// when both endpoints are still free, otherwise drop it. Because a
// matched vertex never unmatches, any edge whose endpoints are both
// free at the end of the stream must have had both endpoints free when
// it arrived -- and would have been matched then -- so the result is
// maximal over everything streamed. StreamingMatcher is that
// ingestion-order engine.
//
// streaming_karp_sipser() is the registry-facing variant for graphs
// that are already in CSR form: it replays the adjacency as a
// deterministic pseudo-random arrival stream (seeded X-row permutation,
// seeded rotation within each row) with one Karp-Sipser-inspired twist:
// degree-1 X rows stream first, so the provably safe pendant matches
// land before the bulk contends for their unique neighbors. Both entry
// points are serial by construction -- determinism at a fixed seed is
// part of the contract (and what the tests pin).
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/edge_list.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

/// One-pass ingestion-order matcher: O(1) per edge, O(nx + ny) state.
/// Feed edges in arrival order, then take() the matching. The result is
/// maximal with respect to every accepted edge.
class StreamingMatcher {
 public:
  StreamingMatcher(vid_t nx, vid_t ny) : matching_(nx, ny) {}

  /// Process one arriving edge; returns true when it was matched.
  /// Out-of-range endpoints are ignored (streams are untrusted input).
  bool accept(vid_t x, vid_t y) noexcept {
    if (x < 0 || y < 0 || x >= matching_.num_x() || y >= matching_.num_y()) {
      return false;
    }
    if (matching_.is_matched_x(x) || matching_.is_matched_y(y)) return false;
    matching_.match(x, y);
    return true;
  }

  std::int64_t cardinality() const noexcept { return matching_.cardinality(); }

  /// The matching built so far (the matcher keeps accepting afterwards).
  const Matching& matching() const noexcept { return matching_; }

  /// Surrender the matching; the matcher is empty afterwards.
  Matching take() noexcept { return std::move(matching_); }

 private:
  Matching matching_;
};

/// Stream an edge list through a StreamingMatcher in storage order.
/// The single-pass matching an ingestion pipeline would have produced
/// had it matched while loading.
Matching streaming_maximal(const EdgeList& edges);

/// Registry initializer ("streaming_ks"): replay `g`'s adjacency as a
/// seeded arrival stream (degree-1 X rows first, then a seeded
/// permutation of the rest; each row scanned from a seeded rotation)
/// through the single-pass rule. Serial and deterministic given `seed`;
/// returns a maximal matching.
Matching streaming_karp_sipser(const BipartiteGraph& g,
                               std::uint64_t seed = 1);

}  // namespace graftmatch
