#include "graftmatch/init/streaming_ks.hpp"

#include <numeric>
#include <vector>

#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

Matching streaming_maximal(const EdgeList& edges) {
  StreamingMatcher matcher(edges.nx, edges.ny);
  for (const Edge& e : edges.edges) matcher.accept(e.x, e.y);
  return matcher.take();
}

Matching streaming_karp_sipser(const BipartiteGraph& g, std::uint64_t seed) {
  const vid_t nx = g.num_x();
  StreamingMatcher matcher(nx, g.num_y());
  if (nx == 0 || g.num_edges() == 0) return matcher.take();

  // Arrival order: every X row once, degree-1 rows first (the safe
  // Karp-Sipser choice -- their unique neighbor cannot be claimed by a
  // better edge later), then the rest in a seeded Fisher-Yates order.
  std::vector<vid_t> order(static_cast<std::size_t>(nx));
  std::iota(order.begin(), order.end(), vid_t{0});
  Xoshiro256 rng(mix64(seed ^ 0x5354524bu));  // "STRK"
  std::size_t pendant = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (g.degree_x(order[i]) == 1) std::swap(order[pendant++], order[i]);
  }
  for (std::size_t i = order.size(); i > pendant + 1; --i) {
    std::swap(order[pendant + rng.below(i - pendant)], order[i - 1]);
  }

  for (const vid_t x : order) {
    const auto row = g.neighbors_of_x(x);
    if (row.empty()) continue;
    // Seeded rotation: the stream interleaves rows in practice, so the
    // first-seen neighbor should not always be the lowest id.
    const std::size_t start =
        static_cast<std::size_t>(rng.below(row.size()));
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (matcher.accept(x, row[(start + k) % row.size()])) break;
    }
  }
  return matcher.take();
}

}  // namespace graftmatch
