#include "graftmatch/init/parallel_karp_sipser.hpp"

#include <vector>

#include "graftmatch/engine/edge_partition.hpp"
#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {
namespace {

// Two-sided CAS claim of the edge (x, y). Claims y first; rolls back if
// x was taken concurrently. Returns true when the match was made.
bool try_match(std::vector<vid_t>& mate_x, std::vector<vid_t>& mate_y,
               vid_t x, vid_t y) {
  if (!cas(mate_y[static_cast<std::size_t>(y)], kInvalidVertex, x)) {
    return false;
  }
  if (!cas(mate_x[static_cast<std::size_t>(x)], kInvalidVertex, y)) {
    relaxed_store(mate_y[static_cast<std::size_t>(y)], kInvalidVertex);
    return false;
  }
  return true;
}

}  // namespace

Matching parallel_karp_sipser(const BipartiteGraph& g, std::uint64_t seed,
                              int threads) {
  const ThreadCountGuard guard(threads);
  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();
  Matching matching(nx, ny);
  auto& mate_x = matching.mate_x();
  auto& mate_y = matching.mate_y();

  // Residual degrees, updated with atomic decrements.
  std::vector<eid_t> deg_x(static_cast<std::size_t>(nx));
  std::vector<eid_t> deg_y(static_cast<std::size_t>(ny));
  parallel_region([&] {
#pragma omp for schedule(static) nowait
    for (vid_t x = 0; x < nx; ++x) {
      deg_x[static_cast<std::size_t>(x)] = g.degree_x(x);
    }
#pragma omp for schedule(static)
    for (vid_t y = 0; y < ny; ++y) {
      deg_y[static_cast<std::size_t>(y)] = g.degree_y(y);
    }
  });

  // Degree-1 work queues; X vertices stored as-is, Y shifted by nx.
  const auto capacity = static_cast<std::size_t>(nx + ny);
  FrontierQueue<vid_t> current(capacity);
  FrontierQueue<vid_t> next(capacity);
  engine::EdgePartition partition;

  engine::collect_if(nx + ny, current, [&](vid_t id) {
    return id < nx ? deg_x[static_cast<std::size_t>(id)] == 1
                   : deg_y[static_cast<std::size_t>(id - nx)] == 1;
  });

  // After matching (x, y), decrement the residual degree of every
  // still-unmatched neighbor; the thread that performs the 2 -> 1
  // transition enqueues the vertex (exactly-once by fetch_add return).
  const auto retire = [&](vid_t x, vid_t y, auto& out) {
    for (const vid_t w : g.neighbors_of_x(x)) {
      if (relaxed_load(mate_y[static_cast<std::size_t>(w)]) ==
              kInvalidVertex &&
          fetch_add_relaxed(deg_y[static_cast<std::size_t>(w)], eid_t{-1}) ==
              2) {
        out.push(w + nx);
      }
    }
    for (const vid_t w : g.neighbors_of_y(y)) {
      if (relaxed_load(mate_x[static_cast<std::size_t>(w)]) ==
              kInvalidVertex &&
          fetch_add_relaxed(deg_x[static_cast<std::size_t>(w)], eid_t{-1}) ==
              2) {
        out.push(w);
      }
    }
  };

  const auto process_degree_one = [&](vid_t id, auto& out) {
    if (id < nx) {
      const vid_t x = id;
      if (relaxed_load(mate_x[static_cast<std::size_t>(x)]) != kInvalidVertex)
        return;
      for (const vid_t y : g.neighbors_of_x(x)) {
        if (relaxed_load(mate_y[static_cast<std::size_t>(y)]) !=
            kInvalidVertex)
          continue;
        if (try_match(mate_x, mate_y, x, y)) {
          retire(x, y, out);
          return;
        }
      }
    } else {
      const vid_t y = id - nx;
      if (relaxed_load(mate_y[static_cast<std::size_t>(y)]) != kInvalidVertex)
        return;
      for (const vid_t x : g.neighbors_of_y(y)) {
        if (relaxed_load(mate_x[static_cast<std::size_t>(x)]) !=
            kInvalidVertex)
          continue;
        if (try_match(mate_x, mate_y, x, y)) {
          retire(x, y, out);
          return;
        }
      }
    }
  };

  // A degree-1 vertex's cost is dominated by retire()'s scan of the
  // matched pair's adjacencies, so balance the drain by graph degree.
  const auto work_weight = [&](vid_t id) {
    return static_cast<std::int64_t>(id < nx ? g.degree_x(id)
                                             : g.degree_y(id - nx));
  };
  const auto drain_degree_one = [&] {
    while (!current.empty()) {
      engine::for_each_work_item(current.items(), work_weight, next,
                                 partition, process_degree_one);
      current.clear();
      current.swap(next);
    }
  };

  drain_degree_one();

  // Random rule: parallel greedy sweep over unmatched X vertices in a
  // hash-scrambled order, then give the safe rule another chance.
  const std::uint64_t salt = mix64(seed);
  engine::for_each_index_dynamic(nx, 256, next, [&](vid_t i, auto& out) {
    const auto x = static_cast<vid_t>(
        (static_cast<std::uint64_t>(i) + salt) %
        static_cast<std::uint64_t>(nx));
    if (relaxed_load(mate_x[static_cast<std::size_t>(x)]) != kInvalidVertex)
      return;
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (relaxed_load(mate_y[static_cast<std::size_t>(y)]) !=
          kInvalidVertex)
        continue;
      if (try_match(mate_x, mate_y, x, y)) {
        retire(x, y, out);
        break;
      }
    }
  });
  current.clear();
  current.swap(next);
  drain_degree_one();

  // The CAS rollback in try_match can transiently hide a free Y vertex
  // from a concurrent scan, so finish with a serial maximality sweep.
  for (vid_t x = 0; x < nx; ++x) {
    if (matching.is_matched_x(x)) continue;
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (!matching.is_matched_y(y)) {
        matching.match(x, y);
        break;
      }
    }
  }
  return matching;
}

}  // namespace graftmatch
