// Simple greedy maximal matching: the baseline initializer Karp-Sipser
// is compared against in the initializer ablation.
#pragma once

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

/// For each X vertex in index order, match it to its first unmatched
/// neighbor. Returns a maximal matching.
Matching greedy_maximal(const BipartiteGraph& g);

/// Randomized greedy: visit X vertices in a random order and match each
/// to a random unmatched neighbor. Returns a maximal matching.
/// Deterministic given `seed`.
Matching randomized_greedy(const BipartiteGraph& g, std::uint64_t seed = 1);

/// True when no edge has both endpoints unmatched (the definition the
/// tests assert for every initializer).
bool is_maximal_matching(const BipartiteGraph& g, const Matching& m);

}  // namespace graftmatch
