#include "graftmatch/init/greedy.hpp"

#include <vector>

#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

Matching greedy_maximal(const BipartiteGraph& g) {
  Matching matching(g.num_x(), g.num_y());
  for (vid_t x = 0; x < g.num_x(); ++x) {
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (!matching.is_matched_y(y)) {
        matching.match(x, y);
        break;
      }
    }
  }
  return matching;
}

Matching randomized_greedy(const BipartiteGraph& g, std::uint64_t seed) {
  Matching matching(g.num_x(), g.num_y());
  Xoshiro256 rng(seed);

  std::vector<vid_t> order(static_cast<std::size_t>(g.num_x()));
  for (vid_t x = 0; x < g.num_x(); ++x) {
    order[static_cast<std::size_t>(x)] = x;
  }
  for (vid_t i = g.num_x() - 1; i > 0; --i) {
    const auto j =
        static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(j)]);
  }

  for (const vid_t x : order) {
    const auto adj = g.neighbors_of_x(x);
    if (adj.empty()) continue;
    // Probe from a random start so hub columns aren't always preferred.
    const auto start =
        static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(
            adj.size())));
    for (std::size_t k = 0; k < adj.size(); ++k) {
      const vid_t y = adj[(start + k) % adj.size()];
      if (!matching.is_matched_y(y)) {
        matching.match(x, y);
        break;
      }
    }
  }
  return matching;
}

bool is_maximal_matching(const BipartiteGraph& g, const Matching& m) {
  for (vid_t x = 0; x < g.num_x(); ++x) {
    if (m.is_matched_x(x)) continue;
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (!m.is_matched_y(y)) return false;
    }
  }
  return true;
}

}  // namespace graftmatch
