// Core scalar types and constants shared by every graftmatch module.
#pragma once

#include <cstdint>

namespace graftmatch {

/// Vertex identifier. Signed so that -1 can denote "no vertex"
/// (unmatched mate, absent parent/root pointer), matching the paper's
/// conventions in Algorithm 3.
using vid_t = std::int64_t;

/// Edge offset into a CSR adjacency array.
using eid_t = std::int64_t;

/// Sentinel for "no vertex" / "unmatched" / "pointer not set".
inline constexpr vid_t kInvalidVertex = -1;

/// Default direction-optimization / grafting threshold parameter.
/// The paper reports alpha ~= 5 works best for MS-BFS-Graft (Sec. III-B).
inline constexpr double kDefaultAlpha = 5.0;

}  // namespace graftmatch
