// Phase-scoped stats sink: uniform RunStats filling for every solver.
//
// The paper's figures need the same run anatomy from every algorithm
// (Fig. 1 algorithmic counters, Fig. 4 search rate, Fig. 6 step
// breakdown), but before the engine existed each solver filled RunStats
// by hand and most left the step breakdown empty. StatsSink owns the
// run timer and one accumulating stopwatch per step category; a solver
// opens scoped laps around its steps and calls finish() once, and the
// header/footer fields (algorithm, cardinalities, seconds, step
// breakdown, threads_used) come out consistent by construction.
//
// The sink is also the engine's gateway into the obs/ tracing layer:
// construction opens a trace run when collection is armed, every step
// lap emits begin/end trace events strictly inside its stopwatch
// measurement (so trace step totals reconcile with the stopwatch
// columns from below), and finish() flushes the trace and distills it
// into RunStats::obs.
#pragma once

#include <omp.h>

#include <algorithm>
#include <array>
#include <string>
#include <utility>

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/obs/summary.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch::engine {

/// Step categories of StepSeconds (Fig. 6), in field order.
enum class Step { kTopDown, kBottomUp, kAugment, kGraft, kStatistics };

class StatsSink {
 public:
  /// Stamps the run header into `stats` and starts the run timer; the
  /// trace run, the region-epoch snapshot, and the width probe all
  /// target `session`, so concurrent sessions fill disjoint RunStats.
  /// Construct AFTER any ThreadCountGuard so `parallel` solvers record
  /// the thread count their regions will actually use.
  StatsSink(SessionContext& session, RunStats& stats, std::string algorithm,
            const Matching& initial, bool parallel)
      : stats_(stats),
        session_(session),
        epoch_at_start_(
            session.region_epoch().load(std::memory_order_relaxed)) {
    stats_.algorithm = std::move(algorithm);
    stats_.initial_cardinality = initial.cardinality();
    // Guard value only: finish() replaces it with the width the runtime
    // actually granted once any parallel region has run (they disagree
    // under OMP_THREAD_LIMIT or nested-parallelism restrictions).
    stats_.threads_used = parallel ? omp_get_max_threads() : 1;
    owns_trace_ = session.trace().begin_run(stats_.algorithm.c_str(),
                                            stats_.threads_used);
  }

  /// Ambient-session compatibility ctor for pre-session call sites.
  StatsSink(RunStats& stats, std::string algorithm, const Matching& initial,
            bool parallel)
      : StatsSink(ambient_session(), stats, std::move(algorithm), initial,
                  parallel) {}

  /// The accumulating stopwatch behind one step category, for direct
  /// reads; prefer start()/stop() for timing so trace spans stay
  /// paired with the stopwatch laps.
  Stopwatch& watch(Step step) noexcept {
    return watches_[static_cast<std::size_t>(step)];
  }

  /// Manual lap across scopes. The trace begin lands after the
  /// stopwatch starts and the trace end before it stops, so every
  /// trace span nests inside its stopwatch lap and the summed trace
  /// durations never exceed the StepSeconds columns.
  void start(Step step) noexcept {
    watch(step).start();
    obs::emit_begin(step_event(step));
  }
  void stop(Step step) noexcept {
    obs::emit_end(step_event(step));
    watch(step).stop();
  }

  /// RAII lap on a step category (relies on C++17 guaranteed elision).
  class ScopedStep {
   public:
    ScopedStep(StatsSink& sink, Step step) noexcept
        : sink_(sink), step_(step) {
      sink_.start(step_);
    }
    ~ScopedStep() { sink_.stop(step_); }
    ScopedStep(const ScopedStep&) = delete;
    ScopedStep& operator=(const ScopedStep&) = delete;

   private:
    StatsSink& sink_;
    Step step_;
  };
  ScopedStep scoped(Step step) noexcept { return ScopedStep(*this, step); }

  /// Stamps the run footer: final cardinality, wall time, the step
  /// breakdown (time not covered by any lap lands in `other`), the
  /// granted thread-team width, and -- when this run owned an armed
  /// trace -- the flushed trace's counters.
  void finish(const Matching& final_matching) {
    stats_.final_cardinality = final_matching.cardinality();
    stats_.seconds = timer_.elapsed();
    StepSeconds& s = stats_.step_seconds;
    s.top_down = watch(Step::kTopDown).seconds();
    s.bottom_up = watch(Step::kBottomUp).seconds();
    s.augment = watch(Step::kAugment).seconds();
    s.graft = watch(Step::kGraft).seconds();
    s.statistics = watch(Step::kStatistics).seconds();
    s.other = 0.0;
    s.other = std::max(0.0, stats_.seconds - s.total());

    if (session_.region_epoch().load(std::memory_order_relaxed) !=
        epoch_at_start_) {
      // At least one parallel region ran during this run; the probe
      // holds the width the runtime granted it.
      const int granted =
          session_.team_width().load(std::memory_order_relaxed);
      if (granted > 0) stats_.threads_used = granted;
    }

    if (owns_trace_) {
      session_.trace().end_run();
      const obs::TraceSummary summary =
          obs::summarize(session_.trace().last_run());
      ObsCounters& o = stats_.obs;
      o.collected = true;
      o.events = summary.events;
      o.dropped = summary.dropped;
      o.levels = summary.levels;
      o.bottom_up_levels = summary.bottom_up_levels;
      o.direction_switches = summary.direction_switches;
      o.grafts = summary.grafts;
      o.rebuilds = summary.rebuilds;
      o.frontier_peak = summary.frontier_peak;
      o.frontier_volume = summary.frontier_volume;
    }
  }

 private:
  static const obs::EventName& step_event(Step step) noexcept {
    switch (step) {
      case Step::kTopDown: return obs::names::kTopDown;
      case Step::kBottomUp: return obs::names::kBottomUp;
      case Step::kAugment: return obs::names::kAugment;
      case Step::kGraft: return obs::names::kGraft;
      case Step::kStatistics: return obs::names::kStatistics;
    }
    return obs::names::kStatistics;  // unreachable
  }

  RunStats& stats_;
  SessionContext& session_;
  Timer timer_;
  std::array<Stopwatch, 5> watches_;
  std::uint64_t epoch_at_start_ = 0;
  bool owns_trace_ = false;
};

}  // namespace graftmatch::engine
