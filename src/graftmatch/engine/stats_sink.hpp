// Phase-scoped stats sink: uniform RunStats filling for every solver.
//
// The paper's figures need the same run anatomy from every algorithm
// (Fig. 1 algorithmic counters, Fig. 4 search rate, Fig. 6 step
// breakdown), but before the engine existed each solver filled RunStats
// by hand and most left the step breakdown empty. StatsSink owns the
// run timer and one accumulating stopwatch per step category; a solver
// opens scoped laps around its steps and calls finish() once, and the
// header/footer fields (algorithm, cardinalities, seconds, step
// breakdown, threads_used) come out consistent by construction.
#pragma once

#include <omp.h>

#include <algorithm>
#include <array>
#include <string>
#include <utility>

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch::engine {

/// Step categories of StepSeconds (Fig. 6), in field order.
enum class Step { kTopDown, kBottomUp, kAugment, kGraft, kStatistics };

class StatsSink {
 public:
  /// Stamps the run header into `stats` and starts the run timer.
  /// Construct AFTER any ThreadCountGuard so `parallel` solvers record
  /// the thread count their regions will actually use.
  StatsSink(RunStats& stats, std::string algorithm, const Matching& initial,
            bool parallel)
      : stats_(stats) {
    stats_.algorithm = std::move(algorithm);
    stats_.initial_cardinality = initial.cardinality();
    stats_.threads_used = parallel ? omp_get_max_threads() : 1;
  }

  /// The accumulating stopwatch behind one step category, for solvers
  /// that need manual start()/stop() across scopes.
  Stopwatch& watch(Step step) noexcept {
    return watches_[static_cast<std::size_t>(step)];
  }

  /// RAII lap on a step category (relies on C++17 guaranteed elision).
  ScopedLap scoped(Step step) noexcept { return ScopedLap(watch(step)); }

  /// Stamps the run footer: final cardinality, wall time, and the step
  /// breakdown (time not covered by any lap lands in `other`).
  void finish(const Matching& final_matching) {
    stats_.final_cardinality = final_matching.cardinality();
    stats_.seconds = timer_.elapsed();
    StepSeconds& s = stats_.step_seconds;
    s.top_down = watch(Step::kTopDown).seconds();
    s.bottom_up = watch(Step::kBottomUp).seconds();
    s.augment = watch(Step::kAugment).seconds();
    s.graft = watch(Step::kGraft).seconds();
    s.statistics = watch(Step::kStatistics).seconds();
    s.other = 0.0;
    s.other = std::max(0.0, stats_.seconds - s.total());
  }

 private:
  RunStats& stats_;
  Timer timer_;
  std::array<Stopwatch, 5> watches_;
};

}  // namespace graftmatch::engine
