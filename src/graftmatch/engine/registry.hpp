// Solver and initializer registries.
//
// Everything that runs a matching algorithm by name -- the benches,
// the differential-oracle harness, examples/matching_tool -- used to
// hard-code its own solver list and drift out of sync. The registries
// are the single source of truth: one entry per algorithm and per
// initial-matching heuristic, each with a uniform factory signature so
// a newly registered solver is picked up by every driver (and oracle-
// checked by tests/diff) automatically.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/runtime/context.hpp"

namespace graftmatch::engine {

/// Runs one matching algorithm: grows `matching` in place on `g` under
/// `config` and returns the run's stats. The session receives the run's
/// probe state, trace, and workspace traffic (runtime/context.hpp);
/// entries bind it as the ambient session for the duration of the call.
using SolverFn = std::function<RunStats(SessionContext& session,
                                        const BipartiteGraph& g,
                                        Matching& matching,
                                        const RunConfig& config)>;

struct SolverInfo {
  std::string name;          ///< registry key, e.g. "graft"
  std::string display_name;  ///< paper label, e.g. "MS-BFS-Graft"
  std::string description;   ///< one-line summary for --list output
  bool parallel = false;     ///< honors RunConfig::threads beyond 1
  SolverFn solve;

  /// Run under an explicit session.
  RunStats run(SessionContext& session, const BipartiteGraph& g,
               Matching& matching, const RunConfig& config) const {
    return solve(session, g, matching, config);
  }
  /// Run under the calling thread's ambient session -- the pre-session
  /// call shape every one-shot driver uses.
  RunStats run(const BipartiteGraph& g, Matching& matching,
               const RunConfig& config) const {
    return solve(ambient_session(), g, matching, config);
  }
};

/// Builds an initial matching on `g`. Reads RunConfig::seed and
/// RunConfig::threads (every entry honors `threads`, including the
/// serial heuristics, which simply never open a region).
using InitializerFn = std::function<Matching(SessionContext& session,
                                             const BipartiteGraph& g,
                                             const RunConfig& config)>;

struct InitializerInfo {
  std::string name;         ///< registry key, e.g. "ks"
  std::string description;  ///< one-line summary for --list output
  bool parallel = false;
  InitializerFn build;

  /// Build under an explicit session.
  Matching make(SessionContext& session, const BipartiteGraph& g,
                const RunConfig& config) const {
    return build(session, g, config);
  }
  /// Build under the calling thread's ambient session.
  Matching make(const BipartiteGraph& g, const RunConfig& config) const {
    return build(ambient_session(), g, config);
  }
};

/// All registered solvers, in presentation order (paper algorithm
/// first, then the baselines as introduced in Sec. V-A).
std::span<const SolverInfo> solver_registry();

/// All registered initializers ("none" first, then the heuristics in
/// increasing sophistication).
std::span<const InitializerInfo> initializer_registry();

/// Lookup by registry key; throws std::invalid_argument naming the
/// unknown key and listing the known ones.
const SolverInfo& find_solver(const std::string& name);
const InitializerInfo& find_initializer(const std::string& name);

/// Lookup that returns nullptr instead of throwing.
const SolverInfo* find_solver_or_null(const std::string& name);
const InitializerInfo* find_initializer_or_null(const std::string& name);

/// Registry keys, in registry order.
std::vector<std::string> solver_names();
std::vector<std::string> initializer_names();

/// Convenience: find_initializer(name).make(session, g, config), with
/// RunConfig::threads bound for the duration.
Matching make_initial_matching(SessionContext& session,
                               const std::string& name,
                               const BipartiteGraph& g,
                               const RunConfig& config);
/// Ambient-session convenience.
Matching make_initial_matching(const std::string& name,
                               const BipartiteGraph& g,
                               const RunConfig& config);

/// Composable end-to-end driver honoring RunConfig::reduce: run the
/// kernelization pre-pass (src/graftmatch/reduce/), build the initial
/// matching and solve on the kernel, then lift the kernel matching back
/// to `g` via the reconstruction log. `matching` receives the final
/// original-graph matching (its incoming value is ignored).
///
/// The returned stats describe the kernel solve (phases, edges,
/// seconds) with cardinalities translated to original-graph terms and
/// the pre-pass accounted in RunStats::reduce. With reduce == kNone
/// this degenerates to make_initial_matching + solver (no copy, no
/// reduce block), so drivers can route every run through it.
RunStats run_reduced(SessionContext& session,
                     const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config);
/// Ambient-session convenience.
RunStats run_reduced(const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config);

/// Superset driver honoring RunConfig::shard on top of run_reduced:
/// build the initial matching, classify the graph into independent
/// Dulmage-Mendelsohn blocks (src/graftmatch/shard/), solve the
/// deficient blocks -- large ones one at a time with the full thread
/// team, small ones concurrently across a one-thread-per-block pool --
/// and stitch the per-block results into `matching`, auditing validity
/// and cardinality consistency (plus a Koenig maximality certificate
/// under RunConfig::check_invariants). Composes with the reduce
/// pre-pass: the kernel graph is what gets sharded. Falls back to the
/// monolithic solver when one block dominates, and skips the solve
/// entirely when the initializer already produced a maximum matching.
///
/// With shard == kNone this is exactly run_reduced (no decomposition,
/// no shard block in the stats), so drivers can route every run
/// through it. The returned stats aggregate the per-block solves and
/// account the decompose/extract/solve/stitch pipeline in
/// RunStats::shard.
RunStats run_sharded(SessionContext& session,
                     const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config);
/// Ambient-session convenience.
RunStats run_sharded(const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config);

/// The canonical end-to-end entry point: run_sharded under an explicit
/// session (the full RunConfig surface -- reduce, shard, threads,
/// invariant checks -- honored). The serving layer routes every request
/// through this; one-shot drivers use the ambient conveniences above.
RunStats run(SessionContext& session, const std::string& solver_name,
             const std::string& initializer_name, const BipartiteGraph& g,
             Matching& matching, const RunConfig& config);

/// Batch-aware entry: one solve that answers `group_size` coalesced
/// identical requests. MS-BFS-Graft is natively multi-source, so the
/// matching it produces for one request IS the answer for every request
/// agreeing on (graph, solver, initializer, reduce, shard) -- the solve,
/// its workspace lease, and its reduce/shard pre-passes are paid once
/// and amortized across the group. Semantically identical to run();
/// `group_size` exists so the engine layer owns the amortization
/// contract (and its validation) rather than every caller asserting it.
/// Throws std::invalid_argument when group_size == 0.
RunStats run_batch(SessionContext& session, const std::string& solver_name,
                   const std::string& initializer_name,
                   const BipartiteGraph& g, Matching& matching,
                   const RunConfig& config, std::size_t group_size);

}  // namespace graftmatch::engine
