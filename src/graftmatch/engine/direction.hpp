// Pluggable traversal-direction policies for the level-synchronous
// searches.
//
// The paper fixes the top-down/bottom-up switch to `|F| >=
// unvisited/alpha` with alpha ~ 5 (prefer_bottom_up). That rule only
// sees vertex counts; on skewed-degree graphs the frontier's *edge*
// mass is what the next level actually costs, and the fixed rule
// mispredicts in both directions. DirectionSelector wraps the fixed
// rule and adds a Beamer-style adaptive policy driven by scout/awake
// edge counts:
//
//  * scout edges -- the sum of live degrees over the current frontier,
//    i.e. exactly the adjacency entries a top-down level would examine.
//    Computed on demand with one O(|frontier|) degree sweep
//    (scout_edge_sum); the fixed and forced policies never ask for it,
//    so they stay zero-overhead.
//  * awake edges -- the adjacency mass still reachable bottom-up,
//    estimated as unvisited_y * (total_edges / ny). This is an O(1)
//    mean-degree estimate, not an exact count: maintaining the exact
//    remaining mass would cost a subtraction per visit on the hot
//    attach path. The hysteresis band below absorbs the estimate's
//    error on all but pathologically skewed Y-degree distributions.
//
// Switch rules (Beamer's alpha/beta recast onto one knob): go
// bottom-up when scout * alpha > awake; return to top-down only when
// scout * alpha * kAdaptiveHysteresis < awake. Inside the band the
// previous direction persists, which is what prevents the
// level-to-level oscillation a bare threshold produces when the
// frontier hovers near 1/alpha of the graph.
//
// The forced policies (kTopDown / kBottomUp) exist for A/B floors and
// the policy-invariance tests; kBottomUp deliberately ignores the
// caller's low-yield ban so a forced run really is all bottom-up.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/parallel.hpp"

namespace graftmatch::engine {

/// Width of the adaptive policy's stay-put band: once bottom-up, the
/// selector returns to top-down only after the scout mass falls below
/// 1/kAdaptiveHysteresis of the switch-in threshold.
inline constexpr double kAdaptiveHysteresis = 4.0;

/// Sum of adjacency degrees over `items` -- the exact edge count a
/// top-down level over this frontier would scan. One O(|items|) pass
/// over the offsets array; parallel above the serial-team cutoff.
inline std::int64_t scout_edge_sum(const Adjacency& adj,
                                   std::span<const vid_t> items) {
  const auto count = static_cast<std::int64_t>(items.size());
  if (serial_team() || count < 4096) {
    std::int64_t total = 0;
    for (const vid_t v : items) total += adj.degree(v);
    return total;
  }
  std::int64_t total = 0;
  parallel_region([&] {
    std::int64_t local = 0;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      local += adj.degree(items[static_cast<std::size_t>(i)]);
    }
    fetch_add_relaxed(total, local);
  });
  return total;
}

/// Per-run direction chooser. One instance lives for a whole matching
/// run; reset_phase() clears the hysteresis state between phases (every
/// phase starts top-down from fresh roots). Accumulates the
/// DirectionCounters that back the `direction` RunStats block.
class DirectionSelector {
 public:
  DirectionSelector(DirectionPolicy policy, double alpha,
                    std::int64_t total_edges, std::int64_t ny) noexcept
      : policy_(policy),
        alpha_(alpha),
        avg_y_degree_(ny > 0 ? static_cast<double>(total_edges) /
                                   static_cast<double>(ny)
                             : 0.0) {
    counters_.collected = true;
    counters_.policy = policy;
  }

  /// True when choose_bottom_up() will read scout_edges. Callers skip
  /// the O(frontier) degree sweep entirely when this is false.
  bool wants_scout() const noexcept {
    return policy_ == DirectionPolicy::kAdaptive;
  }

  /// Forget the hysteresis state; call at every phase start.
  void reset_phase() noexcept { last_bottom_up_ = false; }

  /// Decide the direction for one level. `scout_edges` is ignored (pass
  /// 0) unless wants_scout(); `banned` is the caller's low-yield
  /// bottom-up ban, honored by fixed/adaptive and ignored by the forced
  /// policies.
  bool choose_bottom_up(std::int64_t frontier_size, std::int64_t scout_edges,
                        std::int64_t unvisited_y, bool banned) noexcept {
    bool bottom_up = false;
    switch (policy_) {
      case DirectionPolicy::kFixed:
        bottom_up =
            !banned && prefer_bottom_up(frontier_size, unvisited_y, alpha_);
        break;
      case DirectionPolicy::kAdaptive:
        bottom_up = !banned && adaptive_choice(frontier_size, scout_edges,
                                               unvisited_y);
        break;
      case DirectionPolicy::kTopDown:
        bottom_up = false;
        break;
      case DirectionPolicy::kBottomUp:
        bottom_up = frontier_size > 0 && unvisited_y > 0;
        break;
    }
    ++counters_.decisions;
    if (bottom_up) ++counters_.bottom_up_levels;
    if (bottom_up != last_bottom_up_) ++counters_.switches;
    last_bottom_up_ = bottom_up;
    return bottom_up;
  }

  const DirectionCounters& counters() const noexcept { return counters_; }
  DirectionCounters& counters() noexcept { return counters_; }

 private:
  bool adaptive_choice(std::int64_t frontier_size, std::int64_t scout_edges,
                       std::int64_t unvisited_y) noexcept {
    if (frontier_size <= 0 || unvisited_y <= 0) return false;
    if (!std::isfinite(alpha_) || alpha_ <= 0.0) return false;
    const double scout = static_cast<double>(scout_edges);
    const double awake = static_cast<double>(unvisited_y) * avg_y_degree_;
    counters_.scout_edges += scout_edges;
    counters_.awake_edges += static_cast<std::int64_t>(awake);
    if (!last_bottom_up_) return scout * alpha_ > awake;
    return scout * alpha_ * kAdaptiveHysteresis >= awake;
  }

  DirectionPolicy policy_;
  double alpha_;
  double avg_y_degree_;
  bool last_bottom_up_ = false;
  DirectionCounters counters_;
};

}  // namespace graftmatch::engine
