// Bulk traversal kernels shared by every solver.
//
// The paper's performance comes from one machine: level-synchronous
// frontier expansion with thread-private queues (FrontierQueue), a
// top-down/bottom-up direction switch, and balanced work division. This
// header owns that machine. Solvers express only their per-edge policy
// (filter / claim / attach lambdas); the kernels own the OpenMP region,
// the FrontierQueue handle flush protocol, and the edge-balanced
// partitioning -- no solver opens a queue handle itself.
//
// Granularity rules (see edge_partition.hpp):
//  * for_each_frontier_edge splits at EDGE granularity -- a hub
//    vertex's adjacency is shared across threads. This is safe because
//    top-down claims are atomic (claim_flag) and the visit callback
//    must be thread-safe per edge.
//  * for_each_unvisited_reverse and for_each_work_item split at ITEM
//    granularity -- each item is owned by one thread, so per-item state
//    (bottom-up visited flags, Karp-Sipser match attempts) needs no
//    atomics and early exit per item is allowed.
//
// All parallel kernels open their region through parallel_region() so
// the TSan stress tier stays suppression-free.
#pragma once

#include <omp.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>

#include "graftmatch/engine/edge_partition.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/types.hpp"

namespace graftmatch::engine {

/// One CSR direction of a bipartite graph, as the kernels consume it.
struct Adjacency {
  std::span<const eid_t> offsets;
  std::span<const vid_t> neighbors;

  eid_t degree(vid_t v) const noexcept {
    return offsets[static_cast<std::size_t>(v) + 1] -
           offsets[static_cast<std::size_t>(v)];
  }
  std::span<const vid_t> of(vid_t v) const noexcept {
    return neighbors.subspan(
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]),
        static_cast<std::size_t>(degree(v)));
  }
};

inline Adjacency x_adjacency(const BipartiteGraph& g) noexcept {
  return {g.x_offsets(), g.x_neighbors()};
}
inline Adjacency y_adjacency(const BipartiteGraph& g) noexcept {
  return {g.y_offsets(), g.y_neighbors()};
}

/// Work done by one kernel invocation, summed over threads.
struct TraversalCounters {
  std::int64_t edges = 0;   ///< adjacency entries examined
  std::int64_t visits = 0;  ///< successful claims / attaches / pushes
};

/// The paper's direction heuristic (Sec. III-B): run bottom-up when the
/// frontier is at least 1/alpha of the unvisited mass. Degenerate
/// inputs are clamped to top-down: with nothing left to visit (or an
/// empty frontier) a bottom-up sweep has no candidates to attach, yet
/// the raw comparison `frontier >= 0/alpha` would always prefer it --
/// and a non-finite alpha (inf collapses every threshold to 0, NaN
/// poisons the compare) must not silently force a direction either.
inline bool prefer_bottom_up(std::int64_t frontier_size,
                             std::int64_t unvisited,
                             double alpha) noexcept {
  if (frontier_size <= 0 || unvisited <= 0) return false;
  if (!std::isfinite(alpha) || alpha <= 0.0) return false;
  return static_cast<double>(frontier_size) >=
         static_cast<double>(unvisited) / alpha;
}

/// True when the next parallel_region() would be one thread wide. The
/// partitioned kernels then skip the per-level prefix-sum build and the
/// region launch and run inline: with nothing to balance the partitioner
/// is pure overhead (an extra O(frontier) pass per level costs ~30% of
/// the serial search rate on uniform-degree graphs, see bench_fig4).
inline bool serial_team() noexcept { return omp_get_max_threads() == 1; }

/// Out-queue adapter for the kernels' one-thread fast paths: pushes go
/// straight through the queue's serial cursor instead of the Handle's
/// L1 buffer, whose flush would copy every item a second time for no
/// contention benefit.
struct DirectPush {
  FrontierQueue<vid_t>& queue;
  void push(const vid_t& item) noexcept { queue.push(item); }
};

/// Top-down level: scan every adjacency entry of every frontier vertex,
/// split at EDGE granularity over the team. `filter(u)` gates a whole
/// vertex (evaluated per fragment on split vertices); `visit(u, v, out,
/// track, counters)` runs per edge and must be thread-safe (claim
/// atomically; bump counters.visits on success; push follow-ups into
/// `out`). `track` is a second thread-private handle on `touched`:
/// callbacks push every vertex they claim so the caller can later
/// classify only vertices the phase actually reached instead of
/// sweeping the full range (the epoch-bookkeeping contract,
/// runtime/epoch_array.hpp). Returns the summed counters; edges counts
/// only filtered-in vertices.
template <typename Filter, typename Visit>
TraversalCounters for_each_frontier_edge(const Adjacency& adj,
                                         std::span<const vid_t> frontier,
                                         FrontierQueue<vid_t>& next,
                                         FrontierQueue<vid_t>& touched,
                                         EdgePartition& partition,
                                         Filter&& filter, Visit&& visit) {
  if (serial_team()) {
    const std::int64_t span_start = obs::timestamp();
    TraversalCounters totals;
    DirectPush out{next};
    DirectPush track{touched};
    for (const vid_t u : frontier) {
      if (!filter(u)) continue;
      const auto nbrs = adj.of(u);
      totals.edges += static_cast<std::int64_t>(nbrs.size());
      for (const vid_t v : nbrs) visit(u, v, out, track, totals);
    }
    obs::emit_complete(obs::names::kKernelFrontierEdge, span_start,
                       totals.edges, totals.visits);
    return totals;
  }
  const auto count = static_cast<std::int64_t>(frontier.size());
  partition.build(count, [&](std::int64_t i) {
    return adj.degree(frontier[static_cast<std::size_t>(i)]);
  });
  TraversalCounters totals;
  parallel_region([&] {
    const std::int64_t span_start = obs::timestamp();
    auto out = next.handle();
    auto track = touched.handle();
    TraversalCounters local;
    const EdgePartition::Range share =
        partition.edge_range(omp_get_thread_num(), omp_get_num_threads());
    if (share.begin < share.end) {
      const EdgePartition::Cursor start = partition.locate(share.begin);
      std::int64_t remaining = share.end - share.begin;
      for (std::int64_t i = start.item; remaining > 0; ++i) {
        const vid_t u = frontier[static_cast<std::size_t>(i)];
        const auto nbrs = adj.of(u);
        const std::int64_t offset = i == start.item ? start.offset : 0;
        const std::int64_t take = std::min(
            static_cast<std::int64_t>(nbrs.size()) - offset, remaining);
        remaining -= take;
        if (take <= 0 || !filter(u)) continue;
        local.edges += take;
        for (std::int64_t k = offset; k < offset + take; ++k) {
          visit(u, nbrs[static_cast<std::size_t>(k)], out, track, local);
        }
      }
    }
    obs::emit_complete(obs::names::kKernelFrontierEdge, span_start,
                       local.edges, local.visits);
    fetch_add_relaxed(totals.edges, local.edges);
    fetch_add_relaxed(totals.visits, local.visits);
  });
  return totals;
}

/// Bottom-up level: each candidate scans its own adjacency for a parent,
/// split at ITEM granularity (edge-balanced, but an item never spans
/// threads -- its state is written without atomics and its scan breaks
/// on the first attach). `skip(y)` drops already-done candidates;
/// `try_edge(y, x, out, track)` attempts one attachment and returns
/// true to stop scanning y (`track` is a thread-private handle on
/// `touched`; callbacks push every vertex they attach, same contract as
/// for_each_frontier_edge). Candidates that neither skip nor attach are
/// pushed to `failed` (callers that do not need the list pass a scratch
/// queue).
template <typename Skip, typename TryEdge>
TraversalCounters for_each_unvisited_reverse(const Adjacency& adj,
                                             std::span<const vid_t> candidates,
                                             FrontierQueue<vid_t>& next,
                                             FrontierQueue<vid_t>& failed,
                                             FrontierQueue<vid_t>& touched,
                                             EdgePartition& partition,
                                             Skip&& skip, TryEdge&& try_edge) {
  if (serial_team()) {
    const std::int64_t span_start = obs::timestamp();
    TraversalCounters totals;
    DirectPush out{next};
    DirectPush failed_out{failed};
    DirectPush track{touched};
    for (const vid_t y : candidates) {
      if (skip(y)) continue;
      bool attached = false;
      for (const vid_t x : adj.of(y)) {
        ++totals.edges;
        if (try_edge(y, x, out, track)) {
          ++totals.visits;
          attached = true;
          break;
        }
      }
      if (!attached) failed_out.push(y);
    }
    obs::emit_complete(obs::names::kKernelReverse, span_start, totals.edges,
                       totals.visits);
    return totals;
  }
  const auto count = static_cast<std::int64_t>(candidates.size());
  // Weight degree+1: items with few (or zero) edges still cost a probe,
  // and an all-zero frontier must not collapse onto one thread.
  partition.build(count, [&](std::int64_t i) {
    return adj.degree(candidates[static_cast<std::size_t>(i)]) + 1;
  });
  TraversalCounters totals;
  parallel_region([&] {
    const std::int64_t span_start = obs::timestamp();
    auto out = next.handle();
    auto failed_out = failed.handle();
    auto track = touched.handle();
    TraversalCounters local;
    const EdgePartition::Range share =
        partition.item_range(omp_get_thread_num(), omp_get_num_threads());
    for (std::int64_t i = share.begin; i < share.end; ++i) {
      const vid_t y = candidates[static_cast<std::size_t>(i)];
      if (skip(y)) continue;
      bool attached = false;
      for (const vid_t x : adj.of(y)) {
        ++local.edges;
        if (try_edge(y, x, out, track)) {
          ++local.visits;
          attached = true;
          break;
        }
      }
      if (!attached) failed_out.push(y);
    }
    obs::emit_complete(obs::names::kKernelReverse, span_start, local.edges,
                       local.visits);
    fetch_add_relaxed(totals.edges, local.edges);
    fetch_add_relaxed(totals.visits, local.visits);
  });
  return totals;
}

/// Edge-balanced parallel sweep over arbitrary work items with a
/// thread-private out-queue. `weight(id)` estimates an item's cost in
/// edges (the kernel adds the +1 per-item floor itself); `body(id,
/// handle)` runs once per item on its owning thread.
template <typename WeightFn, typename Body>
void for_each_work_item(std::span<const vid_t> items, WeightFn&& weight,
                        FrontierQueue<vid_t>& out, EdgePartition& partition,
                        Body&& body) {
  if (serial_team()) {
    DirectPush handle{out};
    for (const vid_t id : items) body(id, handle);
    return;
  }
  const auto count = static_cast<std::int64_t>(items.size());
  partition.build(count, [&](std::int64_t i) {
    return weight(items[static_cast<std::size_t>(i)]) + 1;
  });
  parallel_region([&] {
    auto handle = out.handle();
    const EdgePartition::Range share =
        partition.item_range(omp_get_thread_num(), omp_get_num_threads());
    for (std::int64_t i = share.begin; i < share.end; ++i) {
      body(items[static_cast<std::size_t>(i)], handle);
    }
  });
}

/// Dynamically scheduled sweep over item blocks of `chunk`, with a
/// thread-private out-queue and per-thread counters. Used where a tuned
/// block size is part of the algorithm (push-relabel's queue limit).
/// `body(id, handle, counters)`.
template <typename Body>
TraversalCounters for_each_chunked(std::span<const vid_t> items, int chunk,
                                   FrontierQueue<vid_t>& out, Body&& body) {
  const auto count = static_cast<std::int64_t>(items.size());
  const auto step = static_cast<std::int64_t>(chunk > 0 ? chunk : 1);
  TraversalCounters totals;
  parallel_region([&] {
    const std::int64_t span_start = obs::timestamp();
    auto handle = out.handle();
    TraversalCounters local;
#pragma omp for schedule(dynamic, 1) nowait
    for (std::int64_t base = 0; base < count; base += step) {
      const std::int64_t end = std::min(count, base + step);
      for (std::int64_t i = base; i < end; ++i) {
        body(items[static_cast<std::size_t>(i)], handle, local);
      }
    }
    handle.flush();
    obs::emit_complete(obs::names::kKernelChunked, span_start, local.edges,
                       local.visits);
    fetch_add_relaxed(totals.edges, local.edges);
    fetch_add_relaxed(totals.visits, local.visits);
  });
  return totals;
}

/// Statically scheduled parallel sweep of [0, count) with a
/// thread-private out-queue: `body(v, handle)`.
template <typename Body>
void for_each_index(vid_t count, FrontierQueue<vid_t>& out, Body&& body) {
  if (serial_team()) {
    DirectPush handle{out};
    for (vid_t v = 0; v < count; ++v) body(v, handle);
    return;
  }
  parallel_region([&] {
    auto handle = out.handle();
#pragma omp for schedule(static)
    for (vid_t v = 0; v < count; ++v) body(v, handle);
  });
}

/// As above with two out-queues (e.g. a renewable/active classification):
/// `body(v, first_handle, second_handle)`.
template <typename Body>
void for_each_index(vid_t count, FrontierQueue<vid_t>& first,
                    FrontierQueue<vid_t>& second, Body&& body) {
  if (serial_team()) {
    DirectPush first_handle{first};
    DirectPush second_handle{second};
    for (vid_t v = 0; v < count; ++v) body(v, first_handle, second_handle);
    return;
  }
  parallel_region([&] {
    auto first_handle = first.handle();
    auto second_handle = second.handle();
#pragma omp for schedule(static)
    for (vid_t v = 0; v < count; ++v) body(v, first_handle, second_handle);
  });
}

/// Dynamically scheduled variant of for_each_index for sweeps with
/// uneven per-index cost: `body(v, handle)`.
template <typename Body>
void for_each_index_dynamic(vid_t count, int chunk, FrontierQueue<vid_t>& out,
                            Body&& body) {
  if (serial_team()) {
    DirectPush handle{out};
    for (vid_t v = 0; v < count; ++v) body(v, handle);
    return;
  }
  parallel_region([&] {
    auto handle = out.handle();
#pragma omp for schedule(dynamic, chunk)
    for (vid_t v = 0; v < count; ++v) body(v, handle);
  });
}

/// Parallel filter: push every v in [0, count) with pred(v) into `out`.
/// `pred` may have side effects on v's own state (used to re-initialize
/// roots while collecting them).
template <typename Pred>
void collect_if(vid_t count, FrontierQueue<vid_t>& out, Pred&& pred) {
  for_each_index(count, out, [&](vid_t v, auto& handle) {
    if (pred(v)) handle.push(v);
  });
}

/// Parallel count of pred(v) over [0, count).
template <typename Pred>
std::int64_t count_if(vid_t count, Pred&& pred) {
  if (serial_team()) {
    std::int64_t total = 0;
    for (vid_t v = 0; v < count; ++v) total += pred(v) ? 1 : 0;
    return total;
  }
  std::int64_t total = 0;
  parallel_region([&] {
    std::int64_t local = 0;
#pragma omp for schedule(static)
    for (vid_t v = 0; v < count; ++v) local += pred(v) ? 1 : 0;
    fetch_add_relaxed(total, local);
  });
  return total;
}

/// Statically scheduled sweep over an explicit item list with a
/// thread-private out-queue: `body(v, handle)`. The incremental
/// counterpart of for_each_index for phase bookkeeping that must scale
/// with the vertices a phase touched, not with the whole vertex range.
/// Items are assumed uniform-cost (use for_each_work_item when they are
/// not).
template <typename Body>
void for_each_item(std::span<const vid_t> items, FrontierQueue<vid_t>& out,
                   Body&& body) {
  if (serial_team()) {
    DirectPush handle{out};
    for (const vid_t v : items) body(v, handle);
    return;
  }
  const auto count = static_cast<std::int64_t>(items.size());
  parallel_region([&] {
    auto handle = out.handle();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      body(items[static_cast<std::size_t>(i)], handle);
    }
  });
}

/// As above with two out-queues (renewable/active classification over
/// the touched-vertex lists): `body(v, first_handle, second_handle)`.
template <typename Body>
void for_each_item(std::span<const vid_t> items, FrontierQueue<vid_t>& first,
                   FrontierQueue<vid_t>& second, Body&& body) {
  if (serial_team()) {
    DirectPush first_handle{first};
    DirectPush second_handle{second};
    for (const vid_t v : items) body(v, first_handle, second_handle);
    return;
  }
  const auto count = static_cast<std::int64_t>(items.size());
  parallel_region([&] {
    auto first_handle = first.handle();
    auto second_handle = second.handle();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      body(items[static_cast<std::size_t>(i)], first_handle, second_handle);
    }
  });
}

/// Word-level candidate compaction over a packed bitmap
/// (runtime/epoch_array.hpp AtomicBitmap::words()): calls `body(v,
/// handle)` for every ZERO bit v < bit_count, iterating set bits of the
/// complemented word with count-trailing-zeros instead of testing all
/// 64 positions. This is how the bottom-up candidate list is rebuilt
/// from the visited bitmap: one cache line yields 512 candidates, and
/// words that are all-ones (fully visited regions) cost a single
/// compare.
template <typename Body>
void for_each_zero_bit(std::span<const std::uint64_t> words,
                       std::int64_t bit_count, FrontierQueue<vid_t>& out,
                       Body&& body) {
  constexpr std::int64_t kBits = 64;
  const auto word_count = static_cast<std::int64_t>(words.size());
  const auto scan_word = [&](std::int64_t w, auto& handle) {
    std::uint64_t holes = ~words[static_cast<std::size_t>(w)];
    if (holes == 0) return;
    const std::int64_t base = w * kBits;
    if (base + kBits > bit_count) {
      // Tail word: mask off the padding bits past bit_count.
      const auto live = static_cast<std::uint64_t>(bit_count - base);
      holes &= live >= 64 ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << live) - 1);
    }
    while (holes != 0) {
      const int bit = std::countr_zero(holes);
      holes &= holes - 1;  // clear lowest set bit
      body(base + bit, handle);
    }
  };
  if (serial_team()) {
    DirectPush handle{out};
    for (std::int64_t w = 0; w < word_count; ++w) scan_word(w, handle);
    return;
  }
  parallel_region([&] {
    auto handle = out.handle();
#pragma omp for schedule(static)
    for (std::int64_t w = 0; w < word_count; ++w) scan_word(w, handle);
  });
}

/// Work-stealing sweep over search roots for depth-first solvers whose
/// per-root cost is unpredictable (dynamic scheduling beats any static
/// partition there). Each thread builds its own workspace with
/// `make_ws()`, runs `body(root, ws)` per root, then `merge(ws)` runs
/// once per thread under a mutex (OpenMP `critical` is invisible to
/// TSan; see parallel_region's contract).
template <typename MakeWs, typename Body, typename Merge>
void for_each_root_dynamic(vid_t count, int chunk, MakeWs&& make_ws,
                           Body&& body, Merge&& merge) {
  std::mutex merge_mutex;
  parallel_region([&] {
    auto ws = make_ws();
#pragma omp for schedule(dynamic, chunk)
    for (vid_t v = 0; v < count; ++v) body(v, ws);
    const std::scoped_lock lock(merge_mutex);
    merge(ws);
  });
}

/// Serial frontier expansion for the single-source baselines: scans
/// frontier adjacencies in order, calling `visit(u, v)` per edge until
/// it returns false (early stop) or the frontier is exhausted. Returns
/// the number of edges examined.
template <typename Visit>
std::int64_t scan_frontier_edges(const Adjacency& adj,
                                 std::span<const vid_t> frontier,
                                 Visit&& visit) {
  std::int64_t edges = 0;
  for (const vid_t u : frontier) {
    for (const vid_t v : adj.of(u)) {
      ++edges;
      if (!visit(u, v)) return edges;
    }
  }
  return edges;
}

}  // namespace graftmatch::engine
