// Word-level bottom-up traversal: consume the visited bitmap 64
// candidates at a time.
//
// The bit-granular bottom-up path (for_each_unvisited_reverse over the
// candidate pool) pays per CANDIDATE: a pool entry, a skip test, and an
// atomic RMW per attach -- the word-packed AtomicBitmap is built once
// per level and then consumed one bit at a time. This kernel consumes
// it the way it is stored: iterate the visited complement with
// ctz/popcount over whole 64-bit words, scan each hole's adjacency for
// an eligible parent, and commit ALL of a word's winners with ONE
// word-granular claim (AtomicBitmap::claim_word) instead of 64
// fetch_or's. Fully-visited regions cost a single compare per 64
// vertices, and no candidate pool is materialized at all -- the bitmap
// complement IS the candidate list, which also removes the pool's
// build/refill bookkeeping from the phase loop.
//
// Safety follows from scan -> claim -> attach ordering: a thread
// attaches only bits its claim actually won, so exactly-once claiming
// transfers unchanged from the bit path. Eligibility is evaluated
// before the claim; a tree can die between the check and the attach,
// which is the same documented benign race the bit path has (the
// candidate is wasted for the phase, never incorrect). Under the
// word-per-thread schedule the claim CAS normally succeeds on the first
// try; the per-bit fallback inside claim_word covers external writers
// (and is exercised directly by the word-kernel stress test).
//
// The parallel sweep opens its region through parallel_region() so the
// TSan stress tier stays suppression-free.
#pragma once

#include <omp.h>

#include <bit>
#include <cstdint>

#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/epoch_array.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/types.hpp"

namespace graftmatch::engine {

/// Work done by one word-level sweep, summed over threads. `traversal`
/// matches the bit kernels' counters (edges scanned / attaches);
/// `candidates` is the zero bits examined -- the word arm's stand-in
/// for the pool size in the low-yield ban -- and commits/fallbacks
/// instrument claim_word for the `direction` stats block.
struct WordScanCounters {
  TraversalCounters traversal;
  std::int64_t candidates = 0;
  std::int64_t commits = 0;    ///< claim_word calls that won >= 1 bit
  std::int64_t fallbacks = 0;  ///< commits that hit the per-bit fallback
};

/// One bottom-up level over the complement of `visited` (bits
/// [0, bit_count)). For every zero bit y, scan `adj.of(y)` for the
/// first x with `eligible(y, x)`; winners are claimed word-at-a-time
/// and then attached via `attach(y, x, out)` (out = thread-private
/// handle on `next`; every attached y is also pushed to `touched`,
/// same tracking contract as for_each_unvisited_reverse). Words are
/// distributed dynamically -- per-word cost swings with hole density
/// and adjacency sizes, so a static split would straggle on skewed
/// graphs.
template <typename Eligible, typename Attach>
WordScanCounters for_each_unvisited_word(const Adjacency& adj,
                                         AtomicBitmap& visited,
                                         std::int64_t bit_count,
                                         FrontierQueue<vid_t>& next,
                                         FrontierQueue<vid_t>& touched,
                                         Eligible&& eligible,
                                         Attach&& attach) {
  constexpr std::int64_t kBits =
      static_cast<std::int64_t>(AtomicBitmap::kBitsPerWord);
  const auto word_count = static_cast<std::int64_t>(visited.word_count());
  WordScanCounters totals;

  const auto scan_word = [&](std::int64_t w, auto& out, auto& track,
                             WordScanCounters& local, bool serial) {
    std::uint64_t holes = ~visited.load_word(static_cast<std::size_t>(w));
    if (holes == 0) return;
    const std::int64_t base = w * kBits;
    if (base + kBits > bit_count) {
      // Tail word: mask off the padding bits past bit_count.
      const auto live = static_cast<std::uint64_t>(bit_count - base);
      holes &= live >= 64 ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << live) - 1);
      if (holes == 0) return;
    }
    std::uint64_t want = 0;
    vid_t parent_of[AtomicBitmap::kBitsPerWord];
    std::uint64_t pending = holes;
    while (pending != 0) {
      const int bit = std::countr_zero(pending);
      pending &= pending - 1;
      const vid_t y = static_cast<vid_t>(base + bit);
      ++local.candidates;
      for (const vid_t x : adj.of(y)) {
        ++local.traversal.edges;
        if (eligible(y, x)) {
          want |= std::uint64_t{1} << bit;
          parent_of[bit] = x;
          break;
        }
      }
    }
    if (want == 0) return;
    bool fell_back = false;
    const std::uint64_t won =
        serial ? visited.claim_word_serial(static_cast<std::size_t>(w), want)
               : visited.claim_word(static_cast<std::size_t>(w), want,
                                    &fell_back);
    if (won != 0) ++local.commits;
    if (fell_back) ++local.fallbacks;
    std::uint64_t grant = won;
    while (grant != 0) {
      const int bit = std::countr_zero(grant);
      grant &= grant - 1;
      const vid_t y = static_cast<vid_t>(base + bit);
      ++local.traversal.visits;
      track.push(y);
      attach(y, parent_of[bit], out);
    }
  };

  if (serial_team()) {
    DirectPush out{next};
    DirectPush track{touched};
    for (std::int64_t w = 0; w < word_count; ++w) {
      scan_word(w, out, track, totals, /*serial=*/true);
    }
    return totals;
  }
  parallel_region([&] {
    const std::int64_t span_start = obs::timestamp();
    auto out = next.handle();
    auto track = touched.handle();
    WordScanCounters local;
#pragma omp for schedule(dynamic, 32) nowait
    for (std::int64_t w = 0; w < word_count; ++w) {
      scan_word(w, out, track, local, /*serial=*/false);
    }
    out.flush();
    track.flush();
    obs::emit_complete(obs::names::kKernelWord, span_start,
                       local.traversal.edges, local.traversal.visits);
    fetch_add_relaxed(totals.traversal.edges, local.traversal.edges);
    fetch_add_relaxed(totals.traversal.visits, local.traversal.visits);
    fetch_add_relaxed(totals.candidates, local.candidates);
    fetch_add_relaxed(totals.commits, local.commits);
    fetch_add_relaxed(totals.fallbacks, local.fallbacks);
  });
  return totals;
}

}  // namespace graftmatch::engine
