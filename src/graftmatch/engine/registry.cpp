#include "graftmatch/engine/registry.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/baselines/pothen_fan.hpp"
#include "graftmatch/baselines/push_relabel.hpp"
#include "graftmatch/baselines/ss_bfs.hpp"
#include "graftmatch/baselines/ss_dfs.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/init/parallel_karp_sipser.hpp"
#include "graftmatch/init/streaming_ks.hpp"
#include "graftmatch/obs/summary.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/reduce/reduce.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/timer.hpp"
#include "graftmatch/shard/shard.hpp"
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch::engine {
namespace {

std::vector<SolverInfo> build_solvers() {
  std::vector<SolverInfo> solvers;
  solvers.push_back(
      {"graft", "MS-BFS-Graft",
       "multi-source BFS with direction optimization and tree grafting "
       "(the paper's algorithm)",
       true,
       [](SessionContext& s, const BipartiteGraph& g, Matching& m,
          const RunConfig& c) { return ms_bfs_graft(s, g, m, c); }});
  solvers.push_back(
      {"msbfs", "MS-BFS",
       "plain multi-source BFS with frontier rebuilding (Azad et al.)", true,
       [](SessionContext& s, const BipartiteGraph& g, Matching& m,
          const RunConfig& c) { return ms_bfs(s, g, m, c); }});
  solvers.push_back(
      {"pf", "Pothen-Fan",
       "multithreaded Pothen-Fan DFS with lookahead and fairness", true,
       [](SessionContext& s, const BipartiteGraph& g, Matching& m,
          const RunConfig& c) { return pothen_fan(s, g, m, c); }});
  solvers.push_back(
      {"pr", "PR", "parallel push-relabel with global relabeling", true,
       [](SessionContext& s, const BipartiteGraph& g, Matching& m,
          const RunConfig& c) { return push_relabel(s, g, m, c); }});
  solvers.push_back(
      {"hk", "HK", "serial Hopcroft-Karp (shortest augmenting phases)", false,
       [](SessionContext& s, const BipartiteGraph& g, Matching& m,
          const RunConfig& c) { return hopcroft_karp(s, g, m, c); }});
  solvers.push_back(
      {"ssbfs", "SS-BFS", "serial single-source BFS augmentation", false,
       [](SessionContext& s, const BipartiteGraph& g, Matching& m,
          const RunConfig& c) { return ss_bfs(s, g, m, c); }});
  solvers.push_back(
      {"ssdfs", "SS-DFS", "serial single-source DFS augmentation", false,
       [](SessionContext& s, const BipartiteGraph& g, Matching& m,
          const RunConfig& c) { return ss_dfs(s, g, m, c); }});
  return solvers;
}

// Initializer bodies take no session parameter; binding the session as
// ambient for the duration of the call routes everything they touch
// (parallel regions, trace emissions, stress jitter) to it.
std::vector<InitializerInfo> build_initializers() {
  std::vector<InitializerInfo> inits;
  inits.push_back({"none", "empty matching (no initialization)", false,
                   [](SessionContext&, const BipartiteGraph& g,
                      const RunConfig&) {
                     return Matching(g.num_x(), g.num_y());
                   }});
  inits.push_back({"greedy", "deterministic greedy maximal matching", false,
                   [](SessionContext& s, const BipartiteGraph& g,
                      const RunConfig&) {
                     const SessionScope scope(s);
                     return greedy_maximal(g);
                   }});
  inits.push_back({"rgreedy", "randomized-order greedy maximal matching",
                   false,
                   [](SessionContext& s, const BipartiteGraph& g,
                      const RunConfig& c) {
                     const SessionScope scope(s);
                     return randomized_greedy(g, c.seed);
                   }});
  inits.push_back({"ks", "serial Karp-Sipser (degree-1 rule + random rule)",
                   false,
                   [](SessionContext& s, const BipartiteGraph& g,
                      const RunConfig& c) {
                     const SessionScope scope(s);
                     return karp_sipser(g, c.seed);
                   }});
  inits.push_back({"ksr1", "serial Karp-Sipser, degree-1 rule only", false,
                   [](SessionContext& s, const BipartiteGraph& g,
                      const RunConfig&) {
                     const SessionScope scope(s);
                     return karp_sipser_rule1(g);
                   }});
  inits.push_back({"pks", "parallel Karp-Sipser (Azad et al. style)", true,
                   [](SessionContext& s, const BipartiteGraph& g,
                      const RunConfig& c) {
                     const SessionScope scope(s);
                     return parallel_karp_sipser(g, c.seed, c.threads);
                   }});
  inits.push_back({"streaming_ks",
                   "single-pass streaming maximal (degree-1 rows first)",
                   false,
                   [](SessionContext& s, const BipartiteGraph& g,
                      const RunConfig& c) {
                     const SessionScope scope(s);
                     return streaming_karp_sipser(g, c.seed);
                   }});
  return inits;
}

std::string known_keys(std::span<const std::string> names) {
  std::ostringstream out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << (i == 0 ? "" : ", ") << names[i];
  }
  return out.str();
}

}  // namespace

std::span<const SolverInfo> solver_registry() {
  static const std::vector<SolverInfo> solvers = build_solvers();
  return solvers;
}

std::span<const InitializerInfo> initializer_registry() {
  static const std::vector<InitializerInfo> inits = build_initializers();
  return inits;
}

const SolverInfo* find_solver_or_null(const std::string& name) {
  for (const SolverInfo& solver : solver_registry()) {
    if (solver.name == name) return &solver;
  }
  return nullptr;
}

const InitializerInfo* find_initializer_or_null(const std::string& name) {
  for (const InitializerInfo& init : initializer_registry()) {
    if (init.name == name) return &init;
  }
  return nullptr;
}

const SolverInfo& find_solver(const std::string& name) {
  if (const SolverInfo* solver = find_solver_or_null(name)) return *solver;
  throw std::invalid_argument("unknown solver \"" + name +
                              "\"; known solvers: " +
                              known_keys(solver_names()));
}

const InitializerInfo& find_initializer(const std::string& name) {
  if (const InitializerInfo* init = find_initializer_or_null(name)) {
    return *init;
  }
  throw std::invalid_argument("unknown initializer \"" + name +
                              "\"; known initializers: " +
                              known_keys(initializer_names()));
}

std::vector<std::string> solver_names() {
  std::vector<std::string> names;
  for (const SolverInfo& solver : solver_registry()) {
    names.push_back(solver.name);
  }
  return names;
}

std::vector<std::string> initializer_names() {
  std::vector<std::string> names;
  for (const InitializerInfo& init : initializer_registry()) {
    names.push_back(init.name);
  }
  return names;
}

Matching make_initial_matching(SessionContext& session,
                               const std::string& name,
                               const BipartiteGraph& g,
                               const RunConfig& config) {
  const InitializerInfo& init = find_initializer(name);
  // RunConfig::threads must bind for every initializer, including any
  // future one that opens regions without plumbing an explicit thread
  // argument (parallel_karp_sipser takes one, but the guard makes the
  // contract hold registry-wide).
  const ThreadCountGuard guard(config.threads);
  return init.make(session, g, config);
}

Matching make_initial_matching(const std::string& name,
                               const BipartiteGraph& g,
                               const RunConfig& config) {
  return make_initial_matching(ambient_session(), name, g, config);
}

namespace {

/// Close the session's owned trace run and stamp the distilled counters.
void distill_obs(SessionContext& session, RunStats& stats) {
  session.trace().end_run();
  const obs::TraceSummary summary =
      obs::summarize(session.trace().last_run());
  ObsCounters& o = stats.obs;
  o.collected = true;
  o.events = summary.events;
  o.dropped = summary.dropped;
  o.levels = summary.levels;
  o.bottom_up_levels = summary.bottom_up_levels;
  o.direction_switches = summary.direction_switches;
  o.grafts = summary.grafts;
  o.rebuilds = summary.rebuilds;
  o.frontier_peak = summary.frontier_peak;
  o.frontier_volume = summary.frontier_volume;
}

/// Solves a kernel graph end to end: builds the initial matching and
/// grows it to maximum, however the caller composes that (plain
/// initializer + solver, or the sharded pipeline).
using KernelSolveFn = std::function<RunStats(const BipartiteGraph& g,
                                             Matching& matching)>;

/// The reduce -> kernel-solve -> reconstruct pipeline shared by
/// run_reduced and run_sharded; `solve_kernel` is what varies. Owns the
/// trace run (when armed) so the reduce/compact/reconstruct spans
/// emitted outside the solver land in the same trace; nested StatsSinks
/// record into this run instead of opening their own, and the distilled
/// counters are stamped here.
RunStats reduce_pipeline(SessionContext& session, const BipartiteGraph& g,
                         Matching& matching, const RunConfig& config,
                         const std::string& trace_name,
                         const KernelSolveFn& solve_kernel) {
  const SessionScope scope(session);
  const ThreadCountGuard guard(config.threads);
  const bool owns_trace =
      session.trace().begin_run(trace_name.c_str(), omp_get_max_threads());

  reduce::Reduction reduction = reduce::reduce_graph(g, config.reduce);
  // Identity reduction: solve on the original graph and skip the
  // reconstruction pass entirely (the matching is already in
  // original-graph terms).
  const BipartiteGraph& solve_g = reduce::solve_graph(reduction, g);
  Matching kernel_matching(solve_g.num_x(), solve_g.num_y());
  RunStats stats = solve_kernel(solve_g, kernel_matching);

  if (reduction.identity) {
    matching = std::move(kernel_matching);
  } else {
    const Timer timer;
    matching = reduce::reconstruct_matching(g, reduction, kernel_matching);
    reduction.stats.reconstruct_seconds = timer.elapsed();
  }

  stats.reduce = reduction.stats;
  // Translate cardinalities to original-graph terms: each forced match
  // and each fold contributes exactly one edge on top of the kernel
  // matching, both before and after the solve, so the augmentation
  // delta (final - initial) still describes the kernel solve.
  stats.initial_cardinality +=
      reduction.stats.forced_matches + reduction.stats.folds;
  stats.final_cardinality = matching.cardinality();

  if (owns_trace) distill_obs(session, stats);
  return stats;
}

/// Fold one per-block solve into the aggregate sharded stats.
void accumulate_block(RunStats& total, const RunStats& block) {
  total.phases += block.phases;
  total.edges_traversed += block.edges_traversed;
  total.augmentations += block.augmentations;
  total.total_path_edges += block.total_path_edges;
  total.step_seconds.top_down += block.step_seconds.top_down;
  total.step_seconds.bottom_up += block.step_seconds.bottom_up;
  total.step_seconds.augment += block.step_seconds.augment;
  total.step_seconds.graft += block.step_seconds.graft;
  total.step_seconds.statistics += block.step_seconds.statistics;
  total.step_seconds.other += block.step_seconds.other;
}

/// The sharded solve of one graph: initializer, DM classification,
/// per-block solves, stitch, audit. See engine::run_sharded for the
/// contract; this is the kernel-solve half (the reduce pre-pass and
/// trace ownership live in the callers).
RunStats solve_sharded_graph(SessionContext& session,
                             const SolverInfo& solver,
                             const std::string& initializer_name,
                             const BipartiteGraph& g, Matching& matching,
                             const RunConfig& config) {
  const SessionScope scope(session);
  const Timer total_timer;
  ShardCounters counters;
  counters.collected = true;
  counters.mode = ShardMode::kDm;

  matching = make_initial_matching(session, initializer_name, g, config);
  const std::int64_t initial_cardinality = matching.cardinality();

  // Saturating one side is a maximality certificate: no augmenting path
  // can exist, so there is nothing to classify, let alone solve.
  if (initial_cardinality == g.num_x() || initial_cardinality == g.num_y()) {
    RunStats stats;
    stats.algorithm = solver.display_name;
    stats.threads_used = omp_get_max_threads();
    stats.initial_cardinality = initial_cardinality;
    stats.final_cardinality = initial_cardinality;
    stats.seconds = total_timer.elapsed();
    stats.shard = counters;
    return stats;
  }

  obs::emit_begin(obs::names::kShardDecompose);
  const Timer decompose_timer;
  // Payoff gate: a component crossing a sixteenth of the edge mass
  // means the graph is dominated by one deficient block, so the
  // decomposition aborts (a fraction of one pass in) and we solve
  // monolithically. Block-rich graphs sit well under the cap (32
  // communities put the largest component near m/32), while web-shaped
  // giants trip it a few percent of a pass in.
  const shard::ShardClassification classes =
      shard::classify_shards(g, matching, g.num_edges() / 16);
  counters.decompose_seconds = decompose_timer.elapsed();
  // The coarse H and S parts are frozen as wholes (one block each when
  // non-empty); only the V part splits into components.
  counters.blocks_h = (classes.h_rows + classes.h_cols) > 0 ? 1 : 0;
  counters.blocks_s = (classes.s_rows + classes.s_cols) > 0 ? 1 : 0;
  counters.blocks_v = static_cast<std::int64_t>(classes.components.size());
  counters.blocks_total =
      counters.blocks_h + counters.blocks_s + counters.blocks_v;
  const std::int64_t solvable = classes.aborted ? 0 : classes.solvable_blocks();
  counters.blocks_frozen = counters.blocks_total - solvable;
  counters.largest_block_edges = classes.largest_solvable_edges();
  obs::emit_end(obs::names::kShardDecompose, counters.blocks_total,
                solvable);

  // Every matched pair lives in exactly one class/component, so the
  // frozen tally is what the solvable components don't account for.
  if (!classes.aborted) {
    counters.frozen_matched =
        initial_cardinality - classes.solvable_matched();
  }

  RunStats stats;
  stats.algorithm = solver.display_name;
  stats.threads_used = omp_get_max_threads();
  stats.initial_cardinality = initial_cardinality;
  stats.final_cardinality = initial_cardinality;

  bool stitched_blocks = false;
  if (classes.aborted ||
      (solvable == 1 && counters.largest_block_edges * 2 > g.num_edges())) {
    // One deficient block dominates the graph (the payoff gate tripped,
    // or the finished census says so); extracting it would copy most of
    // the CSR for no concurrency win. Solve monolithically from the
    // initializer's matching instead.
    counters.fallback = true;
    const Timer solve_timer;
    stats = solver.run(session, g, matching, config);
    counters.solve_seconds = solve_timer.elapsed();
  } else if (solvable == 0) {
    // No component has a free vertex on both sides, so no augmenting
    // path exists anywhere: the initializer's matching is maximum and
    // there is nothing to solve.
  } else {
    const Timer extract_timer;
    std::vector<shard::ShardBlock> blocks =
        shard::extract_blocks(g, matching, classes);
    counters.extract_seconds = extract_timer.elapsed();
    counters.blocks_solved = static_cast<std::int64_t>(blocks.size());

    const Timer solve_timer;
    const int team = std::max(1, omp_get_max_threads());
    const std::int64_t total_edges = classes.solvable_edges();
    // A block holding more than a 1/team share of the deficient work
    // would leave the pool imbalanced; give it the whole team instead.
    std::vector<std::size_t> wide;
    std::vector<std::size_t> pooled;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const bool is_wide =
          team == 1 || blocks[i].graph.num_edges() * team > total_edges;
      (is_wide ? wide : pooled).push_back(i);
    }

    std::vector<std::int64_t> initial_block(blocks.size(), 0);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      initial_block[i] = blocks[i].initial.cardinality();
    }

    std::vector<Matching> solved(blocks.size());
    for (const std::size_t i : wide) {
      obs::emit_begin(obs::names::kShardBlock,
                      static_cast<std::int64_t>(i),
                      blocks[i].graph.num_edges());
      Matching local = std::move(blocks[i].initial);
      accumulate_block(stats,
                       solver.run(session, blocks[i].graph, local, config));
      solved[i] = std::move(local);
      obs::emit_end(obs::names::kShardBlock, static_cast<std::int64_t>(i));
    }
    counters.solved_wide = static_cast<std::int64_t>(wide.size());

    if (!pooled.empty()) {
      // One-thread-per-block pool: each worker pins its OpenMP width to
      // 1 (a per-thread ICV), so every region a nested solver opens is
      // one wide -- which parallel_region supports from any number of
      // host threads at once, TSan builds included.
      std::atomic<std::size_t> cursor{0};
      std::vector<RunStats> pooled_stats(pooled.size());
      RunConfig pool_config = config;
      pool_config.threads = 1;
      const int pool_width = static_cast<int>(std::min<std::size_t>(
          pooled.size(), static_cast<std::size_t>(team)));
      parallel_region(pool_width, [&] {
        const ThreadCountGuard pin(1);
        for (;;) {
          const std::size_t slot =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (slot >= pooled.size()) break;
          const std::size_t i = pooled[slot];
          obs::emit_begin(obs::names::kShardBlock,
                          static_cast<std::int64_t>(i),
                          blocks[i].graph.num_edges());
          Matching local = std::move(blocks[i].initial);
          pooled_stats[slot] =
              solver.run(session, blocks[i].graph, local, pool_config);
          solved[i] = std::move(local);
          obs::emit_end(obs::names::kShardBlock,
                        static_cast<std::int64_t>(i));
        }
      });
      for (const RunStats& s : pooled_stats) accumulate_block(stats, s);
      counters.solved_pooled = static_cast<std::int64_t>(pooled.size());
    }
    counters.solve_seconds = solve_timer.elapsed();

    const Timer stitch_timer;
    std::int64_t expected = initial_cardinality;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      expected += solved[i].cardinality() - initial_block[i];
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      shard::stitch_block(blocks[i], solved[i], matching);
    }
    counters.stitch_seconds = stitch_timer.elapsed();
    const std::int64_t stitched = matching.cardinality();
    obs::emit_instant(obs::names::kShardStitch, stitched);
    if (stitched != expected) {
      throw std::logic_error(
          "run_sharded: stitched cardinality disagrees with the per-block "
          "solves");
    }
    stats.final_cardinality = stitched;
    stitched_blocks = true;
  }

  // Audit: whenever block solutions were stitched back, the result must
  // be a valid matching of the whole graph (the no-op and monolithic
  // paths never touch global ids, so the pass would only re-verify the
  // solver). The Koenig maximality certificate -- itself a full graph
  // traversal -- runs under the invariant-checking knob.
  if ((stitched_blocks || config.check_invariants) &&
      !is_valid_matching(g, matching)) {
    throw std::logic_error("run_sharded: stitched result is not a valid "
                           "matching");
  }
  if (config.check_invariants && !is_maximum_matching(g, matching)) {
    throw std::logic_error("run_sharded: stitched matching failed the "
                           "Koenig maximality audit");
  }

  stats.seconds = total_timer.elapsed();
  stats.shard = counters;
  return stats;
}

}  // namespace

RunStats run_reduced(SessionContext& session,
                     const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config) {
  const SolverInfo& solver = find_solver(solver_name);
  if (config.reduce == ReduceMode::kNone) {
    matching = make_initial_matching(session, initializer_name, g, config);
    return solver.run(session, g, matching, config);
  }
  return reduce_pipeline(
      session, g, matching, config, "reduce+" + solver.name,
      [&](const BipartiteGraph& solve_g, Matching& kernel_matching) {
        kernel_matching =
            make_initial_matching(session, initializer_name, solve_g, config);
        return solver.run(session, solve_g, kernel_matching, config);
      });
}

RunStats run_reduced(const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config) {
  return run_reduced(ambient_session(), solver_name, initializer_name, g,
                     matching, config);
}

RunStats run_sharded(SessionContext& session,
                     const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config) {
  if (config.shard == ShardMode::kNone) {
    return run_reduced(session, solver_name, initializer_name, g, matching,
                       config);
  }
  const SolverInfo& solver = find_solver(solver_name);
  const auto sharded_solve = [&](const BipartiteGraph& solve_g,
                                 Matching& solve_matching) {
    return solve_sharded_graph(session, solver, initializer_name, solve_g,
                               solve_matching, config);
  };
  if (config.reduce == ReduceMode::kNone) {
    const SessionScope scope(session);
    const ThreadCountGuard guard(config.threads);
    const std::string trace_name = "shard+" + solver.name;
    const bool owns_trace =
        session.trace().begin_run(trace_name.c_str(), omp_get_max_threads());
    RunStats stats = sharded_solve(g, matching);
    if (owns_trace) distill_obs(session, stats);
    return stats;
  }
  // Reduce first, shard the kernel: the decomposition then runs on the
  // graph the solver actually sees.
  return reduce_pipeline(session, g, matching, config,
                         "reduce+shard+" + solver.name, sharded_solve);
}

RunStats run_sharded(const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config) {
  return run_sharded(ambient_session(), solver_name, initializer_name, g,
                     matching, config);
}

RunStats run(SessionContext& session, const std::string& solver_name,
             const std::string& initializer_name, const BipartiteGraph& g,
             Matching& matching, const RunConfig& config) {
  return run_sharded(session, solver_name, initializer_name, g, matching,
                     config);
}

RunStats run_batch(SessionContext& session, const std::string& solver_name,
                   const std::string& initializer_name,
                   const BipartiteGraph& g, Matching& matching,
                   const RunConfig& config, std::size_t group_size) {
  if (group_size == 0) {
    throw std::invalid_argument("run_batch: group_size must be >= 1");
  }
  // One solve answers the whole group: the result of a maximum-matching
  // run does not depend on how many identical requests are waiting on
  // it, so the amortization is pure -- no per-member work exists.
  return run_sharded(session, solver_name, initializer_name, g, matching,
                     config);
}

}  // namespace graftmatch::engine
