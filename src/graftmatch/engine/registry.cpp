#include "graftmatch/engine/registry.hpp"

#include <omp.h>

#include <sstream>
#include <stdexcept>
#include <utility>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/baselines/pothen_fan.hpp"
#include "graftmatch/baselines/push_relabel.hpp"
#include "graftmatch/baselines/ss_bfs.hpp"
#include "graftmatch/baselines/ss_dfs.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/init/parallel_karp_sipser.hpp"
#include "graftmatch/obs/summary.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/reduce/reduce.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch::engine {
namespace {

std::vector<SolverInfo> build_solvers() {
  std::vector<SolverInfo> solvers;
  solvers.push_back(
      {"graft", "MS-BFS-Graft",
       "multi-source BFS with direction optimization and tree grafting "
       "(the paper's algorithm)",
       true,
       [](const BipartiteGraph& g, Matching& m, const RunConfig& c) {
         return ms_bfs_graft(g, m, c);
       }});
  solvers.push_back(
      {"msbfs", "MS-BFS",
       "plain multi-source BFS with frontier rebuilding (Azad et al.)", true,
       [](const BipartiteGraph& g, Matching& m, const RunConfig& c) {
         return ms_bfs(g, m, c);
       }});
  solvers.push_back(
      {"pf", "Pothen-Fan",
       "multithreaded Pothen-Fan DFS with lookahead and fairness", true,
       [](const BipartiteGraph& g, Matching& m, const RunConfig& c) {
         return pothen_fan(g, m, c);
       }});
  solvers.push_back(
      {"pr", "PR", "parallel push-relabel with global relabeling", true,
       [](const BipartiteGraph& g, Matching& m, const RunConfig& c) {
         return push_relabel(g, m, c);
       }});
  solvers.push_back(
      {"hk", "HK", "serial Hopcroft-Karp (shortest augmenting phases)", false,
       [](const BipartiteGraph& g, Matching& m, const RunConfig& c) {
         return hopcroft_karp(g, m, c);
       }});
  solvers.push_back(
      {"ssbfs", "SS-BFS", "serial single-source BFS augmentation", false,
       [](const BipartiteGraph& g, Matching& m, const RunConfig& c) {
         return ss_bfs(g, m, c);
       }});
  solvers.push_back(
      {"ssdfs", "SS-DFS", "serial single-source DFS augmentation", false,
       [](const BipartiteGraph& g, Matching& m, const RunConfig& c) {
         return ss_dfs(g, m, c);
       }});
  return solvers;
}

std::vector<InitializerInfo> build_initializers() {
  std::vector<InitializerInfo> inits;
  inits.push_back({"none", "empty matching (no initialization)", false,
                   [](const BipartiteGraph& g, const RunConfig&) {
                     return Matching(g.num_x(), g.num_y());
                   }});
  inits.push_back({"greedy", "deterministic greedy maximal matching", false,
                   [](const BipartiteGraph& g, const RunConfig&) {
                     return greedy_maximal(g);
                   }});
  inits.push_back({"rgreedy", "randomized-order greedy maximal matching",
                   false,
                   [](const BipartiteGraph& g, const RunConfig& c) {
                     return randomized_greedy(g, c.seed);
                   }});
  inits.push_back({"ks", "serial Karp-Sipser (degree-1 rule + random rule)",
                   false,
                   [](const BipartiteGraph& g, const RunConfig& c) {
                     return karp_sipser(g, c.seed);
                   }});
  inits.push_back({"ksr1", "serial Karp-Sipser, degree-1 rule only", false,
                   [](const BipartiteGraph& g, const RunConfig&) {
                     return karp_sipser_rule1(g);
                   }});
  inits.push_back({"pks", "parallel Karp-Sipser (Azad et al. style)", true,
                   [](const BipartiteGraph& g, const RunConfig& c) {
                     return parallel_karp_sipser(g, c.seed, c.threads);
                   }});
  return inits;
}

std::string known_keys(std::span<const std::string> names) {
  std::ostringstream out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << (i == 0 ? "" : ", ") << names[i];
  }
  return out.str();
}

}  // namespace

std::span<const SolverInfo> solver_registry() {
  static const std::vector<SolverInfo> solvers = build_solvers();
  return solvers;
}

std::span<const InitializerInfo> initializer_registry() {
  static const std::vector<InitializerInfo> inits = build_initializers();
  return inits;
}

const SolverInfo* find_solver_or_null(const std::string& name) {
  for (const SolverInfo& solver : solver_registry()) {
    if (solver.name == name) return &solver;
  }
  return nullptr;
}

const InitializerInfo* find_initializer_or_null(const std::string& name) {
  for (const InitializerInfo& init : initializer_registry()) {
    if (init.name == name) return &init;
  }
  return nullptr;
}

const SolverInfo& find_solver(const std::string& name) {
  if (const SolverInfo* solver = find_solver_or_null(name)) return *solver;
  throw std::invalid_argument("unknown solver \"" + name +
                              "\"; known solvers: " +
                              known_keys(solver_names()));
}

const InitializerInfo& find_initializer(const std::string& name) {
  if (const InitializerInfo* init = find_initializer_or_null(name)) {
    return *init;
  }
  throw std::invalid_argument("unknown initializer \"" + name +
                              "\"; known initializers: " +
                              known_keys(initializer_names()));
}

std::vector<std::string> solver_names() {
  std::vector<std::string> names;
  for (const SolverInfo& solver : solver_registry()) {
    names.push_back(solver.name);
  }
  return names;
}

std::vector<std::string> initializer_names() {
  std::vector<std::string> names;
  for (const InitializerInfo& init : initializer_registry()) {
    names.push_back(init.name);
  }
  return names;
}

Matching make_initial_matching(const std::string& name,
                               const BipartiteGraph& g,
                               const RunConfig& config) {
  const InitializerInfo& init = find_initializer(name);
  // RunConfig::threads must bind for every initializer, including any
  // future one that opens regions without plumbing an explicit thread
  // argument (parallel_karp_sipser takes one, but the guard makes the
  // contract hold registry-wide).
  const ThreadCountGuard guard(config.threads);
  return init.make(g, config);
}

RunStats run_reduced(const std::string& solver_name,
                     const std::string& initializer_name,
                     const BipartiteGraph& g, Matching& matching,
                     const RunConfig& config) {
  const SolverInfo& solver = find_solver(solver_name);
  if (config.reduce == ReduceMode::kNone) {
    matching = make_initial_matching(initializer_name, g, config);
    return solver.run(g, matching, config);
  }

  const ThreadCountGuard guard(config.threads);
  // Own the trace run (when armed) so the reduce/compact/reconstruct
  // spans emitted outside the solver land in the same trace; the
  // solver's StatsSink then records into this run instead of opening
  // its own, and the distilled counters are stamped here.
  const std::string trace_name = "reduce+" + solver.name;
  const bool owns_trace =
      obs::begin_run(trace_name.c_str(), omp_get_max_threads());

  reduce::Reduction reduction = reduce::reduce_graph(g, config.reduce);
  // Identity reduction: solve on the original graph and skip the
  // reconstruction pass entirely (the matching is already in
  // original-graph terms).
  const BipartiteGraph& solve_g = reduce::solve_graph(reduction, g);
  Matching kernel_matching =
      make_initial_matching(initializer_name, solve_g, config);
  RunStats stats = solver.run(solve_g, kernel_matching, config);

  if (reduction.identity) {
    matching = std::move(kernel_matching);
  } else {
    const Timer timer;
    matching = reduce::reconstruct_matching(g, reduction, kernel_matching);
    reduction.stats.reconstruct_seconds = timer.elapsed();
  }

  stats.reduce = reduction.stats;
  // Translate cardinalities to original-graph terms: each forced match
  // and each fold contributes exactly one edge on top of the kernel
  // matching, both before and after the solve, so the augmentation
  // delta (final - initial) still describes the kernel solve.
  stats.initial_cardinality +=
      reduction.stats.forced_matches + reduction.stats.folds;
  stats.final_cardinality = matching.cardinality();

  if (owns_trace) {
    obs::end_run();
    const obs::TraceSummary summary = obs::summarize(obs::last_run());
    ObsCounters& o = stats.obs;
    o.collected = true;
    o.events = summary.events;
    o.dropped = summary.dropped;
    o.levels = summary.levels;
    o.bottom_up_levels = summary.bottom_up_levels;
    o.direction_switches = summary.direction_switches;
    o.grafts = summary.grafts;
    o.rebuilds = summary.rebuilds;
    o.frontier_peak = summary.frontier_peak;
    o.frontier_volume = summary.frontier_volume;
  }
  return stats;
}

}  // namespace graftmatch::engine
