// Degree-prefix-sum edge-balanced work partitioner.
//
// Static vertex chunking collapses on skewed frontiers: on RMAT/web
// graphs one hub vertex can hold most of a frontier's edges, so the
// thread that draws the hub's chunk does almost all the work. The fix
// (standard in direction-optimizing BFS codes) is to split by EDGES:
// build a prefix sum over the frontier items' degrees and give every
// thread an equal slice of edge ranks, located with binary search.
//
// Two granularities are exposed, because not every kernel may split a
// vertex across threads:
//
//  * edge granularity (locate / edge_range): a part's slice may start
//    and end mid-adjacency, so a hub's edges are shared by many
//    threads. Safe only when per-target claims are atomic (top-down's
//    claim_flag).
//
//  * item granularity (item_range / edge_balanced_boundaries): part
//    boundaries are snapped to whole items, so each item is owned by
//    exactly one thread. Required when per-item state is written
//    non-atomically (bottom-up's visited flags) or when an item's edge
//    scan breaks early.
//
// Boundaries are pure functions of (prefix, parts) -- identical for
// every thread count and schedule, which the determinism tests pin.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/types.hpp"

namespace graftmatch::engine {

/// Item boundaries for splitting `prefix` (an inclusive degree prefix
/// sum of size items+1, prefix[0] == 0) into `parts` contiguous item
/// ranges of near-equal edge weight. Returns parts+1 monotone indices
/// with front() == 0 and back() == items; part p owns items
/// [result[p], result[p+1]). Zero-weight items at the tail land in the
/// last part, so the ranges always cover every item exactly once.
inline std::vector<std::int64_t> edge_balanced_boundaries(
    std::span<const std::int64_t> prefix, int parts) {
  assert(!prefix.empty() && prefix.front() == 0);
  assert(parts > 0);
  const auto items = static_cast<std::int64_t>(prefix.size()) - 1;
  const std::int64_t total = prefix.back();
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(parts) + 1);
  bounds.front() = 0;
  bounds.back() = items;
  for (int p = 1; p < parts; ++p) {
    const std::int64_t target =
        total / parts * p + total % parts * p / parts;  // ~ total*p/parts
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    bounds[static_cast<std::size_t>(p)] =
        std::max(bounds[static_cast<std::size_t>(p) - 1],
                 static_cast<std::int64_t>(it - prefix.begin()));
  }
  return bounds;
}

/// Reusable prefix-sum scratch for one frontier. build() is called once
/// per level; the queries are then served by binary search without
/// further allocation.
class EdgePartition {
 public:
  /// Rebuild for `items` work items with weight(i) >= 0 each. The fill
  /// is parallel (weights are independent), the scan serial -- the scan
  /// is a tiny fraction of the traversal it balances, and a serial scan
  /// keeps the prefix identical across thread counts.
  template <typename WeightFn>
  void build(std::int64_t items, WeightFn&& weight) {
    items_ = items;
    prefix_.resize(static_cast<std::size_t>(items) + 1);
    prefix_[0] = 0;
    auto* fill = prefix_.data() + 1;
    parallel_region([&] {
#pragma omp for schedule(static)
      for (std::int64_t i = 0; i < items; ++i) {
        fill[i] = static_cast<std::int64_t>(weight(i));
      }
    });
    for (std::int64_t i = 0; i < items; ++i) fill[i] += prefix_[i];
  }

  std::int64_t items() const noexcept { return items_; }
  std::int64_t total() const noexcept {
    return prefix_.empty() ? 0 : prefix_.back();
  }
  std::span<const std::int64_t> prefix() const noexcept { return prefix_; }

  struct Range {
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  /// Edge-rank slice [begin, end) of part `part` of `parts`.
  Range edge_range(int part, int parts) const noexcept {
    const std::int64_t total_edges = total();
    return {total_edges / parts * part + total_edges % parts * part / parts,
            total_edges / parts * (part + 1) +
                total_edges % parts * (part + 1) / parts};
  }

  /// Item slice of part `part` of `parts` (item granularity; boundaries
  /// snapped as in edge_balanced_boundaries).
  Range item_range(int part, int parts) const noexcept {
    const auto bound = [&](int p) {
      if (p >= parts) return items_;
      const std::int64_t total_edges = total();
      const std::int64_t target = total_edges / parts * p +
                                  total_edges % parts * p / parts;
      const auto it =
          std::lower_bound(prefix_.begin(), prefix_.end(), target);
      return static_cast<std::int64_t>(it - prefix_.begin());
    };
    const std::int64_t begin = bound(part);
    return {begin, std::max(begin, bound(part + 1))};
  }

  struct Cursor {
    std::int64_t item = 0;    ///< item containing the edge rank
    std::int64_t offset = 0;  ///< offset of the rank within that item
  };

  /// Locate edge rank `rank` (0 <= rank < total()): the unique item i
  /// with prefix[i] <= rank < prefix[i+1], skipping zero-weight items.
  Cursor locate(std::int64_t rank) const noexcept {
    assert(rank >= 0 && rank < total());
    const auto it =
        std::upper_bound(prefix_.begin(), prefix_.end(), rank) - 1;
    const auto item = static_cast<std::int64_t>(it - prefix_.begin());
    return {item, rank - *it};
  }

 private:
  std::vector<std::int64_t> prefix_;
  std::int64_t items_ = 0;
};

}  // namespace graftmatch::engine
