// Sharding gain: does Dulmage-Mendelsohn block decomposition pay for
// itself END TO END?
//
// For every suite instance plus an explicitly block-rich SBM (disjoint
// communities, no inter-block edges), compares
//   baseline: init + MS-BFS-Graft on the whole graph
//   sharded : init + DM classification + per-block solves + stitch
// with identical initializer/seed/thread settings, both arms timed
// wall-to-wall through engine::run_sharded. Reports the block census,
// per-stage sharding times, and the end-to-end speedup; the CSV
// artifact (bench_shard_gain.csv) is the sharding-stats record CI
// uploads. Both arms must agree on the matching cardinality -- a
// mismatch exits non-zero, so the smoke run doubles as a correctness
// gate.
//
// Expectation (see docs/SHARDING.md): graphs that decompose into many
// frozen-plus-small-deficient blocks (road-shaped, the SBM islands)
// should gain -- the per-block searches never rescan the saturated
// bulk -- while single-block graphs should pay only the one
// classification pass (the monolithic fallback keeps that overhead to
// a few percent).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace graftmatch;

/// Best-of-N wall time (least noisy estimator on a shared machine; see
/// bench_reduce_gain).
double best_seconds(const std::vector<double>& seconds) {
  return *std::min_element(seconds.begin(), seconds.end());
}

/// The block-rich extreme: disconnected SBM communities, each sparse
/// enough to stay deficient after initialization. Scaled like the suite
/// instances so --size works uniformly.
bench::Workload make_island_workload(double factor, std::uint64_t seed) {
  SbmParams params;
  params.rows_per_block = std::max<vid_t>(
      64, static_cast<vid_t>(static_cast<double>(1 << 11) * factor));
  params.cols_per_block = params.rows_per_block;
  params.blocks = 32;
  params.in_degree = 3.0;
  params.out_degree = 0.0;
  params.seed = seed;
  bench::Workload w;
  w.name = "sbm-islands";
  w.paper_name = "(block-rich synthetic)";
  w.graph_class = GraphClass::kScaleFree;
  w.graph = generate_sbm(params);
  return w;
}

/// The frozen-bulk extreme: row-surplus communities whose columns the
/// initializer saturates, leaving permanent free rows. Half the rows
/// stay unmatched, so the seed pre-gate aborts the classification a
/// fraction of a scan in and the run falls back to the monolithic
/// solve -- this instance pins the gate's overhead (parity expected),
/// not a sharding win.
bench::Workload make_frozen_island_workload(double factor,
                                            std::uint64_t seed) {
  SbmParams params;
  params.rows_per_block = std::max<vid_t>(
      64, static_cast<vid_t>(static_cast<double>(1 << 11) * factor));
  params.cols_per_block = std::max<vid_t>(32, params.rows_per_block / 2);
  params.blocks = 32;
  params.in_degree = 4.0;
  params.out_degree = 0.0;
  params.seed = seed + 1;
  bench::Workload w;
  w.name = "sbm-frozen";
  w.paper_name = "(frozen-bulk synthetic)";
  w.graph_class = GraphClass::kScaleFree;
  w.graph = generate_sbm(params);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_shard_gain",
              "DM-sharded solving gain (end-to-end --shard=none vs dm, "
              "MS-BFS-Graft)");

  const int runs = run_count(3);
  const std::string solver = solver_name("graft");
  std::printf("solver    : %s\n\n", solver.c_str());
  CsvWriter csv("bench_shard_gain",
                {"instance", "class", "nx", "ny", "edges", "blocks_total",
                 "blocks_solved", "blocks_frozen", "fallback", "solved_wide",
                 "solved_pooled", "largest_block_edges", "decompose_seconds",
                 "extract_seconds", "solve_seconds", "stitch_seconds",
                 "base_seconds", "sharded_seconds", "speedup", "cardinality"});

  std::vector<Workload> workloads = make_suite_workloads(false);
  workloads.push_back(make_island_workload(size_factor(), seed()));
  workloads.push_back(make_frozen_island_workload(size_factor(), seed()));

  bool all_consistent = true;
  std::printf("%-18s %11s %8s %8s %11s %11s %8s\n", "instance", "edges",
              "blocks", "solved", "base", "sharded", "speedup");
  for (const Workload& w : workloads) {
    if (!instance_selected(w.name)) continue;
    const TimedResult base = time_sharded_runs(w.graph, runs, solver,
                                               ReduceMode::kNone,
                                               ShardMode::kNone);
    const double base_seconds = best_seconds(base.seconds);
    const TimedResult arm = time_sharded_runs(w.graph, runs, solver,
                                              ReduceMode::kNone,
                                              ShardMode::kDm);
    const double arm_seconds = best_seconds(arm.seconds);
    const ShardCounters& sh = arm.last.shard;
    const double speedup = arm_seconds > 0.0 ? base_seconds / arm_seconds : 0.0;
    if (arm.last.final_cardinality != base.last.final_cardinality) {
      std::fprintf(stderr,
                   "CARDINALITY MISMATCH on %s: sharded %lld vs baseline "
                   "%lld\n",
                   w.name.c_str(),
                   static_cast<long long>(arm.last.final_cardinality),
                   static_cast<long long>(base.last.final_cardinality));
      all_consistent = false;
    }
    std::printf("%-18s %11lld %8lld %8lld %11s %11s %7.2fx%s\n",
                w.name.c_str(),
                static_cast<long long>(w.graph.num_edges()),
                static_cast<long long>(sh.blocks_total),
                static_cast<long long>(sh.blocks_solved),
                format_seconds(base_seconds).c_str(),
                format_seconds(arm_seconds).c_str(), speedup,
                sh.fallback ? " (fallback)" : "");
    csv.row({w.name, to_string(w.graph_class),
             CsvWriter::cell(static_cast<std::int64_t>(w.graph.num_x())),
             CsvWriter::cell(static_cast<std::int64_t>(w.graph.num_y())),
             CsvWriter::cell(w.graph.num_edges()),
             CsvWriter::cell(sh.blocks_total),
             CsvWriter::cell(sh.blocks_solved),
             CsvWriter::cell(sh.blocks_frozen),
             CsvWriter::cell(static_cast<std::int64_t>(sh.fallback ? 1 : 0)),
             CsvWriter::cell(sh.solved_wide),
             CsvWriter::cell(sh.solved_pooled),
             CsvWriter::cell(sh.largest_block_edges),
             CsvWriter::cell(sh.decompose_seconds),
             CsvWriter::cell(sh.extract_seconds),
             CsvWriter::cell(sh.solve_seconds),
             CsvWriter::cell(sh.stitch_seconds),
             CsvWriter::cell(base_seconds), CsvWriter::cell(arm_seconds),
             CsvWriter::cell(speedup),
             CsvWriter::cell(arm.last.final_cardinality)});
  }
  std::printf("\ncsv: %s\n", csv.path().c_str());
  return all_consistent ? 0 : 1;
}
