// Fig. 7 reproduction: performance contributions of direction-optimizing
// BFS and tree grafting over plain MS-BFS.
//
// For every suite graph, runs the four ablation corners of the
// algorithm: plain MS-BFS, +direction optimization, +grafting, and the
// full MS-BFS-Graft, and reports each variant's speedup over plain
// MS-BFS plus the traversed-edge counts (the mechanism behind the
// speedup). Expected shape (paper Sec. V-F): direction optimization
// ~1.6x, grafting ~3x on top, biggest on low-matching-number graphs
// (up to ~7.8x).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_fig7_contributions",
               "Fig. 7 (effect of direction-optimizing BFS and tree "
               "grafting on MS-BFS)");

  const int runs = run_count(3);
  const std::vector<Workload> workloads = make_suite_workloads(false);
  CsvWriter csv("fig7_contributions",
                {"instance", "class", "variant", "seconds",
                 "speedup_vs_plain", "edges_traversed"});

  struct Variant {
    const char* name;
    bool dirop;
    bool graft;
  };
  const std::vector<Variant> variants = {
      {"MS-BFS", false, false},
      {"+DirOpt", true, false},
      {"+Graft", false, true},
      {"+Both", true, true},
  };

  std::printf("%-18s", "instance");
  for (const Variant& v : variants) std::printf(" %9s", v.name);
  std::printf("   %12s %12s\n", "edges(plain)", "edges(both)");
  std::printf("%s\n", std::string(86, '-').c_str());

  std::vector<double> log_dirop;
  std::vector<double> log_graft;
  std::vector<double> log_both;
  std::vector<double> log_edge_ratio;

  for (const Workload& w : workloads) {
    double base_seconds = 0.0;
    std::int64_t base_edges = 0;
    std::int64_t both_edges = 0;
    std::printf("%-18s", w.name.c_str());
    double dirop_speedup = 0.0;
    double graft_speedup = 0.0;
    double both_speedup = 0.0;
    for (const Variant& v : variants) {
      RunConfig config;
      config.direction_optimizing = v.dirop;
      config.tree_grafting = v.graft;
      const TimedResult timed = time_matching_runs(
          w.graph, runs, [&](const BipartiteGraph& g, Matching& m) {
            return ms_bfs_graft(g, m, config);
          });
      const double mean = mean_std(timed.seconds).mean;
      if (!v.dirop && !v.graft) {
        base_seconds = mean;
        base_edges = timed.last.edges_traversed;
      }
      if (v.dirop && v.graft) both_edges = timed.last.edges_traversed;
      const double speedup = base_seconds / mean;
      if (v.dirop && !v.graft) dirop_speedup = speedup;
      if (!v.dirop && v.graft) graft_speedup = speedup;
      if (v.dirop && v.graft) both_speedup = speedup;
      std::printf(" %8.2fx", speedup);
      csv.row({w.name, to_string(w.graph_class), v.name,
               CsvWriter::cell(mean), CsvWriter::cell(speedup),
               CsvWriter::cell(timed.last.edges_traversed)});
    }
    std::printf("   %12lld %12lld\n", static_cast<long long>(base_edges),
                static_cast<long long>(both_edges));
    log_dirop.push_back(std::log(dirop_speedup));
    log_graft.push_back(std::log(graft_speedup));
    log_both.push_back(std::log(both_speedup));
    log_edge_ratio.push_back(std::log(static_cast<double>(base_edges) /
                                      static_cast<double>(both_edges)));
  }

  const auto geomean = [](const std::vector<double>& logs) {
    double sum = 0.0;
    for (const double v : logs) sum += v;
    return std::exp(sum / static_cast<double>(logs.size()));
  };
  std::printf("\ngeometric means over all instances: +DirOpt %.2fx, "
              "+Graft %.2fx, +Both %.2fx,\nedge-traversal reduction "
              "(plain/both) %.2fx\n(paper: ~1.6x direction optimization, "
              "~3x additional from grafting, at 40 threads;\non a 1-core "
              "substrate the synchronization savings vanish, so the "
              "edge-traversal\nreduction is the hardware-independent "
              "signal -- largest on the web class.)\n",
              geomean(log_dirop), geomean(log_graft), geomean(log_both),
              geomean(log_edge_ratio));
  std::printf("csv: %s\n", csv.path().c_str());
  return 0;
}
