// Kernelization gain: does the degree-1 (and optional degree-2)
// pre-pass pay for itself END TO END?
//
// For every suite instance and each reduce mode, compares
//   baseline: init + MS-BFS-Graft on the original graph
//   reduced : reduce + init + solve on the kernel + reconstruct
// with identical initializer/seed/thread settings, both arms timed
// wall-to-wall through engine::run_reduced. Reports the kernel shape,
// per-stage reduction times, and the end-to-end speedup; the CSV
// artifact (bench_reduce_gain.csv) is the kernelization-stats record CI
// uploads. Both arms must agree on the matching cardinality -- a
// mismatch exits non-zero, so the smoke run doubles as a correctness
// gate.
//
// Expectation (see docs/REDUCTIONS.md): web-crawl-shaped and
// low-matching-number instances, whose fringes are pendant-heavy,
// should gain clearly; near-regular instances should be a cheap no-op.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

/// Best-of-N wall time. The comparison is between two deterministic
/// pipelines on the same graph, so the minimum is the least noisy
/// estimator of the true cost on a shared machine (any excess over it
/// is scheduler interference, not algorithm).
double best_seconds(const std::vector<double>& seconds) {
  return *std::min_element(seconds.begin(), seconds.end());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_reduce_gain",
              "kernelization pre-pass gain (end-to-end --reduce=none vs "
              "d1/d1d2, MS-BFS-Graft)");

  const int runs = run_count(3);
  const std::vector<ReduceMode> modes = {ReduceMode::kDegree1,
                                         ReduceMode::kDegree12};
  CsvWriter csv("bench_reduce_gain",
                {"instance", "class", "nx", "ny", "edges", "mode",
                 "kernel_nx", "kernel_ny", "kernel_edges", "rounds",
                 "isolated", "forced", "folds", "reduce_seconds",
                 "compact_seconds", "reconstruct_seconds", "base_seconds",
                 "reduced_seconds", "speedup", "cardinality"});

  bool all_consistent = true;
  std::printf("%-18s %-5s %11s %11s %11s %11s %8s\n", "instance", "mode",
              "edges", "kernel", "base", "reduced", "speedup");
  for (const Workload& w : make_suite_workloads(false)) {
    const TimedResult base =
        time_reduced_runs(w.graph, runs, "graft", ReduceMode::kNone);
    const double base_seconds = best_seconds(base.seconds);
    for (const ReduceMode mode : modes) {
      const TimedResult arm = time_reduced_runs(w.graph, runs, "graft", mode);
      const double arm_seconds = best_seconds(arm.seconds);
      const ReduceCounters& r = arm.last.reduce;
      const double speedup =
          arm_seconds > 0.0 ? base_seconds / arm_seconds : 0.0;
      if (arm.last.final_cardinality != base.last.final_cardinality) {
        std::fprintf(
            stderr,
            "CARDINALITY MISMATCH on %s (%s): reduced %lld vs baseline "
            "%lld\n",
            w.name.c_str(), to_string(mode).c_str(),
            static_cast<long long>(arm.last.final_cardinality),
            static_cast<long long>(base.last.final_cardinality));
        all_consistent = false;
      }
      std::printf("%-18s %-5s %11lld %11lld %11s %11s %7.2fx\n",
                  w.name.c_str(), to_string(mode).c_str(),
                  static_cast<long long>(w.graph.num_edges()),
                  static_cast<long long>(r.kernel_edges),
                  format_seconds(base_seconds).c_str(),
                  format_seconds(arm_seconds).c_str(), speedup);
      csv.row({w.name, to_string(w.graph_class),
               CsvWriter::cell(static_cast<std::int64_t>(w.graph.num_x())),
               CsvWriter::cell(static_cast<std::int64_t>(w.graph.num_y())),
               CsvWriter::cell(w.graph.num_edges()), to_string(mode),
               CsvWriter::cell(static_cast<std::int64_t>(r.kernel_nx)),
               CsvWriter::cell(static_cast<std::int64_t>(r.kernel_ny)),
               CsvWriter::cell(r.kernel_edges), CsvWriter::cell(r.rounds),
               CsvWriter::cell(r.isolated_x + r.isolated_y),
               CsvWriter::cell(r.forced_matches), CsvWriter::cell(r.folds),
               CsvWriter::cell(r.reduce_seconds),
               CsvWriter::cell(r.compact_seconds),
               CsvWriter::cell(r.reconstruct_seconds),
               CsvWriter::cell(base_seconds), CsvWriter::cell(arm_seconds),
               CsvWriter::cell(speedup),
               CsvWriter::cell(arm.last.final_cardinality)});
    }
  }
  std::printf("\ncsv: %s\n", csv.path().c_str());
  return all_consistent ? 0 : 1;
}
