#include "bench_common.hpp"

#include <omp.h>
#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "graftmatch/runtime/cli.hpp"

namespace graftmatch::bench {
namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end != value && parsed > 0.0) ? parsed : fallback;
}

[[noreturn]] void usage_and_exit(const char* binary, const char* bad_arg) {
  std::string inits;
  for (const auto& init : engine::initializer_registry()) {
    inits += (inits.empty() ? "" : "|") + init.name;
  }
  std::fprintf(stderr,
               "unknown argument '%s'\n"
               "usage: %s [--seed N] [--threads N] [--size F] [--runs N]\n"
               "          [--batch B] [--batches N] [--window F]\n"
               "          [--init %s]\n"
               "          [--reduce none|d1|d1d2] [--shard none|dm] "
               "[--solver NAME]\n"
               "          [--dirsel fixed|adaptive|td|bu] [--kernel bit|word]\n"
               "          [--only SUBSTR] [--results-dir DIR]\n"
               "Each flag overrides the matching GRAFTMATCH_* environment "
               "variable.\n",
               bad_arg, binary, inits.c_str());
  std::exit(2);
}

/// Numeric flags fail fast on garbage values; before this check a typo
/// like "--runs 1O" silently fell back to the default via strtod.
void validate_flag_value(const char* flag, const char* value) {
  const std::string name = flag;
  if (name == "--seed") {
    cli::parse_uint_arg(flag, value);
  } else if (name == "--threads") {
    cli::parse_int_arg(flag, value, 0, 65536);
  } else if (name == "--runs") {
    cli::parse_int_arg(flag, value, 1, 1000000);
  } else if (name == "--size") {
    cli::parse_double_arg(flag, value, 1e-9, 1e9);
  } else if (name == "--batch") {
    cli::parse_int_arg(flag, value, 1, 1 << 24);
  } else if (name == "--batches") {
    cli::parse_int_arg(flag, value, 1, 1000000);
  } else if (name == "--window") {
    cli::parse_double_arg(flag, value, 1e-9, 1.0);
  } else if (name == "--reduce") {
    ReduceMode mode;
    if (!parse_reduce_mode(value, mode)) {
      std::fprintf(stderr,
                   "bad value '%s' for --reduce (none | d1 | d1d2)\n", value);
      std::exit(2);
    }
  } else if (name == "--shard") {
    ShardMode mode;
    if (!parse_shard_mode(value, mode)) {
      std::fprintf(stderr, "bad value '%s' for --shard (none | dm)\n", value);
      std::exit(2);
    }
  } else if (name == "--dirsel") {
    DirectionPolicy policy;
    if (!parse_direction_policy(value, policy)) {
      std::fprintf(stderr,
                   "bad value '%s' for --dirsel "
                   "(fixed | adaptive | td | bu)\n",
                   value);
      std::exit(2);
    }
  } else if (name == "--kernel") {
    BottomUpKernel kernel;
    if (!parse_bottom_up_kernel(value, kernel)) {
      std::fprintf(stderr, "bad value '%s' for --kernel (bit | word)\n",
                   value);
      std::exit(2);
    }
  }
  // --init, --solver, --only, and --results-dir take free-form
  // strings; the registry lookups validate the names where they are
  // consumed.
}

}  // namespace

void apply_cli_overrides(int argc, char** argv) {
  // Flag name -> the env knob it overrides. The env accessors below are
  // the only readers, so CLI and environment cannot disagree.
  static const struct { const char* flag; const char* env; } kFlags[] = {
      {"--seed", "GRAFTMATCH_SEED"},
      {"--threads", "GRAFTMATCH_THREADS"},
      {"--size", "GRAFTMATCH_SIZE"},
      {"--runs", "GRAFTMATCH_RUNS"},
      {"--batch", "GRAFTMATCH_BATCH"},
      {"--batches", "GRAFTMATCH_BATCHES"},
      {"--window", "GRAFTMATCH_WINDOW"},
      {"--init", "GRAFTMATCH_INIT"},
      {"--reduce", "GRAFTMATCH_REDUCE"},
      {"--shard", "GRAFTMATCH_SHARD"},
      {"--dirsel", "GRAFTMATCH_DIRSEL"},
      {"--kernel", "GRAFTMATCH_KERNEL"},
      {"--solver", "GRAFTMATCH_SOLVER"},
      {"--only", "GRAFTMATCH_ONLY"},
      {"--results-dir", "GRAFTMATCH_RESULTS_DIR"},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    for (const auto& [flag, env] : kFlags) {
      const std::size_t flag_len = std::strlen(flag);
      if (arg == flag) {  // two-token form: --seed 7
        if (i + 1 >= argc) usage_and_exit(argv[0], arg.c_str());
        validate_flag_value(flag, argv[i + 1]);
        ::setenv(env, argv[++i], /*overwrite=*/1);
        matched = true;
        break;
      }
      if (arg.compare(0, flag_len, flag) == 0 && arg.size() > flag_len &&
          arg[flag_len] == '=') {  // one-token form: --seed=7
        validate_flag_value(flag, arg.c_str() + flag_len + 1);
        ::setenv(env, arg.c_str() + flag_len + 1, /*overwrite=*/1);
        matched = true;
        break;
      }
    }
    if (!matched) usage_and_exit(argv[0], arg.c_str());
  }
  if (const int threads = thread_override(); threads > 0) {
    omp_set_num_threads(threads);
  }
}

int thread_override() {
  return static_cast<int>(env_double("GRAFTMATCH_THREADS", 0.0));
}

// Default 0.25: the quarter-scale workloads EXPERIMENTS.md records,
// sized so the full sweep finishes in minutes on a single core. Set
// GRAFTMATCH_SIZE=1 (or higher) for UF-collection-scale runs.
double size_factor() { return env_double("GRAFTMATCH_SIZE", 0.25); }

int run_count(int fallback) {
  return static_cast<int>(env_double("GRAFTMATCH_RUNS",
                                     static_cast<double>(fallback)));
}

std::uint64_t seed() {
  return static_cast<std::uint64_t>(env_double("GRAFTMATCH_SEED", 1.0));
}

std::string init_name() {
  const char* value = std::getenv("GRAFTMATCH_INIT");
  return value != nullptr ? value : "rgreedy";
}

std::string solver_name(const std::string& fallback) {
  const char* value = std::getenv("GRAFTMATCH_SOLVER");
  return value != nullptr ? value : fallback;
}

bool instance_selected(const std::string& name) {
  const char* filter = std::getenv("GRAFTMATCH_ONLY");
  if (filter == nullptr || filter[0] == '\0') return true;
  return name.find(filter) != std::string::npos;
}

int churn_batch_size() {
  return static_cast<int>(env_double("GRAFTMATCH_BATCH", 0.0));
}

int churn_batch_count(int fallback) {
  return static_cast<int>(
      env_double("GRAFTMATCH_BATCHES", static_cast<double>(fallback)));
}

double churn_window_fraction(double fallback) {
  return env_double("GRAFTMATCH_WINDOW", fallback);
}

ReduceMode reduce_mode() {
  const char* value = std::getenv("GRAFTMATCH_REDUCE");
  if (value == nullptr) return ReduceMode::kNone;
  ReduceMode mode;
  if (!parse_reduce_mode(value, mode)) {
    std::fprintf(stderr,
                 "bad value '%s' for GRAFTMATCH_REDUCE (none | d1 | d1d2)\n",
                 value);
    std::exit(2);
  }
  return mode;
}

ShardMode shard_mode() {
  const char* value = std::getenv("GRAFTMATCH_SHARD");
  if (value == nullptr) return ShardMode::kNone;
  ShardMode mode;
  if (!parse_shard_mode(value, mode)) {
    std::fprintf(stderr, "bad value '%s' for GRAFTMATCH_SHARD (none | dm)\n",
                 value);
    std::exit(2);
  }
  return mode;
}

DirectionPolicy direction_policy() {
  const char* value = std::getenv("GRAFTMATCH_DIRSEL");
  if (value == nullptr) return DirectionPolicy::kFixed;
  DirectionPolicy policy;
  if (!parse_direction_policy(value, policy)) {
    std::fprintf(stderr,
                 "bad value '%s' for GRAFTMATCH_DIRSEL "
                 "(fixed | adaptive | td | bu)\n",
                 value);
    std::exit(2);
  }
  return policy;
}

BottomUpKernel bottom_up_kernel() {
  const char* value = std::getenv("GRAFTMATCH_KERNEL");
  if (value == nullptr) return BottomUpKernel::kBit;
  BottomUpKernel kernel;
  if (!parse_bottom_up_kernel(value, kernel)) {
    std::fprintf(stderr, "bad value '%s' for GRAFTMATCH_KERNEL (bit | word)\n",
                 value);
    std::exit(2);
  }
  return kernel;
}

Matching make_initial_matching(const BipartiteGraph& g) {
  RunConfig config;
  config.seed = seed();
  config.threads = thread_override();
  try {
    return engine::make_initial_matching(init_name(), g, config);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "%s\n", error.what());
    std::exit(2);
  }
}

void bench_entry(int argc, char** argv, const std::string& bench_name,
                 const std::string& what) {
  apply_cli_overrides(argc, argv);
  print_header(bench_name, what);
}

void print_header(const std::string& bench_name, const std::string& what) {
  const SystemInfo info = query_system_info();
  std::printf("==== %s ====\n", bench_name.c_str());
  std::printf("reproduces: %s\n", what.c_str());
  std::printf("substrate : %s, %d logical CPUs, OpenMP max threads %d\n",
              info.cpu_model.c_str(), info.logical_cpus,
              info.openmp_max_threads);
  const std::string threads =
      thread_override() > 0 ? std::to_string(thread_override()) : "default";
  std::printf(
      "workload  : size factor %.3g, seed %llu, initializer %s, threads %s, "
      "reduce %s, shard %s, dirsel %s, kernel %s\n\n",
      size_factor(), static_cast<unsigned long long>(seed()),
      init_name().c_str(), threads.c_str(), to_string(reduce_mode()).c_str(),
      to_string(shard_mode()).c_str(), to_string(direction_policy()).c_str(),
      to_string(bottom_up_kernel()).c_str());
}

std::vector<Workload> make_suite_workloads(bool with_matching_number) {
  std::vector<Workload> workloads;
  const double factor = size_factor();
  const std::uint64_t s = seed();
  for (const SuiteInstance& instance : benchmark_suite()) {
    Workload w;
    w.name = instance.name;
    w.paper_name = instance.paper_name;
    w.graph_class = instance.graph_class;
    w.graph = instance.factory(factor, s);
    if (with_matching_number) {
      const auto maximum = maximum_matching_cardinality(w.graph);
      const auto n =
          static_cast<double>(w.graph.num_x() + w.graph.num_y());
      w.matching_fraction = n > 0 ? 2.0 * static_cast<double>(maximum) / n : 0;
    }
    workloads.push_back(std::move(w));
  }
  return workloads;
}

Workload make_workload(const std::string& name) {
  const SuiteInstance& instance = suite_instance(name);
  Workload w;
  w.name = instance.name;
  w.paper_name = instance.paper_name;
  w.graph_class = instance.graph_class;
  w.graph = instance.factory(size_factor(), seed());
  return w;
}

struct CsvWriter::Impl {
  std::string path;
  std::ofstream out;
  std::size_t columns = 0;
};

CsvWriter::CsvWriter(const std::string& bench_name,
                     const std::vector<std::string>& columns)
    : impl_(new Impl) {
  const char* dir_env = std::getenv("GRAFTMATCH_RESULTS_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : "bench_results";
  ::mkdir(dir.c_str(), 0755);  // EEXIST is fine
  impl_->path = dir + "/" + bench_name + ".csv";
  impl_->out.open(impl_->path);
  impl_->columns = columns.size();
  if (impl_->out) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      impl_->out << (i ? "," : "") << columns[i];
    }
    impl_->out << '\n';
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (!impl_->out) return;  // unwritable results dir: stdout still works
  if (fields.size() != impl_->columns) {
    throw std::logic_error("CsvWriter: column count mismatch in " +
                           impl_->path);
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    impl_->out << (i ? "," : "") << fields[i];
  }
  impl_->out << '\n';
}

std::string CsvWriter::cell(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

std::string CsvWriter::cell(std::int64_t value) {
  return std::to_string(value);
}

const std::string& CsvWriter::path() const { return impl_->path; }

MeanStd mean_std(const std::vector<double>& samples) {
  MeanStd result;
  if (samples.empty()) return result;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  result.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (const double s : samples) {
    sq += (s - result.mean) * (s - result.mean);
  }
  result.stddev = std::sqrt(sq / static_cast<double>(samples.size()));
  return result;
}

TimedResult time_matching_runs(
    const BipartiteGraph& g, int runs,
    const std::function<RunStats(const BipartiteGraph&, Matching&)>& run) {
  TimedResult result;
  // Identical start for every run, so timing differences come from the
  // algorithm, not the initializer.
  const Matching initial = make_initial_matching(g);
  for (int r = 0; r < runs; ++r) {
    Matching matching = initial;
    result.last = run(g, matching);
    result.seconds.push_back(result.last.seconds);
  }
  return result;
}

TimedResult time_sharded_runs(const BipartiteGraph& g, int runs,
                              const std::string& solver, ReduceMode reduce,
                              ShardMode shard) {
  TimedResult result;
  RunConfig config;
  config.seed = seed();
  config.threads = thread_override();
  config.reduce = reduce;
  config.shard = shard;
  config.direction_policy = direction_policy();
  config.bottom_up_kernel = bottom_up_kernel();
  const std::string init = init_name();
  for (int r = 0; r < runs; ++r) {
    Matching matching(g.num_x(), g.num_y());
    const Timer timer;
    try {
      result.last = engine::run_sharded(solver, init, g, matching, config);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s\n", error.what());
      std::exit(2);
    }
    result.seconds.push_back(timer.elapsed());
  }
  return result;
}

TimedResult time_reduced_runs(const BipartiteGraph& g, int runs,
                              const std::string& solver, ReduceMode mode) {
  return time_sharded_runs(g, runs, solver, mode, shard_mode());
}

}  // namespace graftmatch::bench
