// Closed-loop load generator for the matching service (serve/).
//
// Loads a small roster once (each graph's maximum cardinality computed
// by the serial Hopcroft-Karp oracle at load time), then drives an
// in-process MatchServer with 1..C concurrent closed-loop clients: each
// client thread blocks on solve(), records the latency, and immediately
// issues the next request over the roster round-robin. Reported per
// client count: requests/s, p50/p99 latency, and the speedup over the
// single-client run -- the number that shows per-worker sessions
// actually run concurrently instead of serializing on shared runtime
// state.
//
// Every response is checked: ok must be set and the served cardinality
// must equal the roster oracle (the server audits this too when
// check_cardinality is on; the bench re-checks client-side so a broken
// audit cannot hide). Any failure makes the bench exit nonzero, so the
// CI smoke run doubles as a correctness gate.
//
// Knobs (on top of the usual bench env/CLI, see bench_common.hpp):
//   GRAFTMATCH_CLIENTS -- max concurrent clients (default
//                         min(4, hardware threads))
//   GRAFTMATCH_RUNS    -- requests per client per level (default 24)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using graftmatch::serve::GraphRoster;
using graftmatch::serve::MatchRequest;
using graftmatch::serve::MatchResponse;
using graftmatch::serve::MatchServer;
using graftmatch::serve::ServerOptions;

int max_clients() {
  if (const char* env = std::getenv("GRAFTMATCH_CLIENTS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, std::max(2u, hw)));
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

struct LevelResult {
  int clients = 0;
  std::int64_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t failures = 0;
};

LevelResult run_level(const GraphRoster& roster, int clients,
                      int requests_per_client) {
  ServerOptions options;
  options.workers = clients;
  options.solver_threads = 1;
  options.queue_capacity = static_cast<std::size_t>(clients) * 4 + 8;
  MatchServer server(roster, options);

  std::vector<std::vector<double>> latencies_ms(
      static_cast<std::size_t>(clients));
  std::atomic<std::int64_t> failures{0};

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies_ms[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(requests_per_client));
      for (int r = 0; r < requests_per_client; ++r) {
        // Round-robin with a per-client offset so concurrent clients
        // hit different graphs most of the time.
        const auto index =
            static_cast<std::size_t>(r + c) % roster.size();
        MatchRequest request;
        request.graph = roster.at(index).name;
        const auto start = std::chrono::steady_clock::now();
        const MatchResponse response = server.solve(std::move(request));
        const auto stop = std::chrono::steady_clock::now();
        mine.push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
        const bool good =
            response.ok && !response.rejected &&
            response.cardinality == roster.at(index).maximum_cardinality;
        if (!good) {
          failures.fetch_add(1, std::memory_order_relaxed);
          if (!response.error.empty()) {
            std::cerr << "bench_serve: request failed: " << response.error
                      << "\n";
          }
        }
      }
    });
  }
  for (std::thread& thread : client_threads) thread.join();
  const auto wall_stop = std::chrono::steady_clock::now();
  server.stop();

  LevelResult result;
  result.clients = clients;
  result.requests =
      static_cast<std::int64_t>(clients) * requests_per_client;
  result.seconds =
      std::chrono::duration<double>(wall_stop - wall_start).count();
  result.rps = result.seconds > 0.0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  std::vector<double> all_ms;
  for (const auto& mine : latencies_ms) {
    all_ms.insert(all_ms.end(), mine.begin(), mine.end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  result.p50_ms = percentile(all_ms, 0.50);
  result.p99_ms = percentile(all_ms, 0.99);
  result.failures = failures.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graftmatch;
  bench::bench_entry(argc, argv, "bench_serve",
                     "matching-as-a-service throughput/latency, closed-loop "
                     "clients against an in-process MatchServer");

  // A small, shape-diverse roster; the serving point is many solves
  // over a fixed graph set, not one big solve.
  const std::vector<std::string> roster_names = {
      "kkt_power-like", "rmat-like", "amazon-like"};
  const GraphRoster roster =
      GraphRoster::from_suite(roster_names, bench::size_factor(),
                              bench::seed());
  std::cout << "roster: " << roster.size() << " graphs";
  for (const auto& entry : roster.entries()) {
    std::cout << "  " << entry.name << " (max " << entry.maximum_cardinality
              << ")";
  }
  std::cout << "\n\n";

  const int clients_max = max_clients();
  const int requests_per_client = bench::run_count(24);

  bench::CsvWriter csv("bench_serve",
                       {"clients", "requests", "seconds", "rps", "p50_ms",
                        "p99_ms", "failures", "speedup_vs_1"});

  std::cout << "clients   req/s     p50 ms    p99 ms    speedup   failures\n";
  double single_client_rps = 0.0;
  double best_speedup = 0.0;
  std::int64_t total_failures = 0;
  for (int clients = 1; clients <= clients_max; ++clients) {
    const LevelResult level = run_level(roster, clients, requests_per_client);
    if (clients == 1) single_client_rps = level.rps;
    const double speedup =
        single_client_rps > 0.0 ? level.rps / single_client_rps : 0.0;
    if (clients >= 2) best_speedup = std::max(best_speedup, speedup);
    total_failures += level.failures;
    std::printf("%7d   %7.1f   %7.2f   %7.2f   %6.2fx   %8lld\n",
                level.clients, level.rps, level.p50_ms, level.p99_ms, speedup,
                static_cast<long long>(level.failures));
    csv.row({bench::CsvWriter::cell(static_cast<std::int64_t>(level.clients)),
             bench::CsvWriter::cell(level.requests),
             bench::CsvWriter::cell(level.seconds),
             bench::CsvWriter::cell(level.rps),
             bench::CsvWriter::cell(level.p50_ms),
             bench::CsvWriter::cell(level.p99_ms),
             bench::CsvWriter::cell(level.failures),
             bench::CsvWriter::cell(speedup)});
  }

  std::cout << "\nbest multi-client speedup over 1 client: " << best_speedup
            << "x\n";
  std::cout << "artifact: " << csv.path() << "\n";
  if (total_failures > 0) {
    std::cerr << "bench_serve: " << total_failures
              << " request(s) failed the cardinality/ok gate\n";
    return 1;
  }
  return 0;
}
