// Closed-loop load generator for the matching service (serve/).
//
// Loads a small roster once (each graph's maximum cardinality computed
// by the serial Hopcroft-Karp oracle at load time), then drives an
// in-process MatchServer with a FIXED worker pool and a growing set of
// concurrent closed-loop clients, each blocking on solve() and
// immediately issuing the next request. Every (graph, client-count)
// level runs twice: once with batching disabled (batch_max = 1, the
// one-solve-per-request baseline) and once with coalescing on -- the
// comparison that shows the BatchScheduler turning same-key backlog
// into fewer solves. Clients within a level all hit the same graph,
// which is the serving scenario batching exists for (many callers
// asking the same question); the level's speedup_vs_unbatched column is
// the direct measure of the win.
//
// Every response is checked: ok must be set and the served cardinality
// must equal the roster oracle (the server audits this too when
// check_cardinality is on; the bench re-checks client-side so a broken
// audit cannot hide). Any failure makes the bench exit nonzero, so the
// CI smoke run doubles as a correctness gate.
//
// Knobs (on top of the usual bench env/CLI, see bench_common.hpp):
//   GRAFTMATCH_CLIENTS -- max concurrent clients (default
//                         min(4, hardware threads))
//   GRAFTMATCH_WORKERS -- server worker sessions, deliberately BELOW
//                         the max client count so a backlog forms and
//                         batching has something to coalesce (default 2)
//   GRAFTMATCH_RUNS    -- requests per client per level (default 24)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using graftmatch::serve::GraphRoster;
using graftmatch::serve::MatchRequest;
using graftmatch::serve::MatchResponse;
using graftmatch::serve::MatchServer;
using graftmatch::serve::ServerCounters;
using graftmatch::serve::ServerOptions;

int env_int(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

int max_clients() {
  const unsigned hw = std::thread::hardware_concurrency();
  return env_int("GRAFTMATCH_CLIENTS",
                 static_cast<int>(std::min(4u, std::max(2u, hw))));
}

double percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

struct LevelResult {
  int clients = 0;
  std::size_t batch_max = 1;
  std::int64_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 1.0;
  std::int64_t failures = 0;
};

LevelResult run_level(const GraphRoster& roster, std::size_t graph_index,
                      int workers, int clients, int requests_per_client,
                      std::size_t batch_max, std::int64_t window_us) {
  ServerOptions options;
  options.workers = workers;
  options.solver_threads = 1;
  options.queue_capacity = static_cast<std::size_t>(clients) * 4 + 8;
  options.batch_max = batch_max;
  options.batch_window_us = window_us;
  MatchServer server(roster, options);

  const std::string graph_name = roster.at(graph_index).name;
  const std::int64_t maximum = roster.at(graph_index).maximum_cardinality;
  std::vector<std::vector<double>> latencies_ms(
      static_cast<std::size_t>(clients));
  std::atomic<std::int64_t> failures{0};

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies_ms[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(requests_per_client));
      for (int r = 0; r < requests_per_client; ++r) {
        MatchRequest request;
        request.graph = graph_name;
        const auto start = std::chrono::steady_clock::now();
        const MatchResponse response = server.solve(std::move(request));
        const auto stop = std::chrono::steady_clock::now();
        mine.push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
        const bool good = response.ok && !response.rejected &&
                          response.cardinality == maximum;
        if (!good) {
          failures.fetch_add(1, std::memory_order_relaxed);
          if (!response.error.empty()) {
            std::cerr << "bench_serve: request failed: " << response.error
                      << "\n";
          }
        }
      }
    });
  }
  for (std::thread& thread : client_threads) thread.join();
  const auto wall_stop = std::chrono::steady_clock::now();
  server.stop();
  const ServerCounters counters = server.counters();

  LevelResult result;
  result.clients = clients;
  result.batch_max = batch_max;
  result.requests = static_cast<std::int64_t>(clients) * requests_per_client;
  result.seconds =
      std::chrono::duration<double>(wall_stop - wall_start).count();
  result.rps = result.seconds > 0.0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  std::vector<double> all_ms;
  for (const auto& mine : latencies_ms) {
    all_ms.insert(all_ms.end(), mine.begin(), mine.end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  result.p50_ms = percentile(all_ms, 0.50);
  result.p99_ms = percentile(all_ms, 0.99);
  result.mean_batch =
      counters.batches > 0
          ? static_cast<double>(counters.completed + counters.failed) /
                static_cast<double>(counters.batches)
          : 1.0;
  result.failures = failures.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graftmatch;
  bench::bench_entry(argc, argv, "bench_serve",
                     "matching-as-a-service throughput/latency: closed-loop "
                     "clients against an in-process MatchServer, batched "
                     "coalescing vs one-solve-per-request");

  // A small, shape-diverse roster; the serving point is many solves
  // over a fixed graph set, not one big solve.
  const std::vector<std::string> roster_names = {
      "kkt_power-like", "rmat-like", "amazon-like"};
  const GraphRoster roster =
      GraphRoster::from_suite(roster_names, bench::size_factor(),
                              bench::seed());
  std::cout << "roster: " << roster.size() << " graphs";
  for (const auto& entry : roster.entries()) {
    std::cout << "  " << entry.name << " (max " << entry.maximum_cardinality
              << ")";
  }
  std::cout << "\n";

  const int clients_max = max_clients();
  const int workers = env_int("GRAFTMATCH_WORKERS", 2);
  const int requests_per_client = bench::run_count(24);
  const std::int64_t window_us = 500;
  std::cout << "workers: " << workers << ", clients up to " << clients_max
            << ", " << requests_per_client << " requests/client, batch "
            << "window " << window_us << " us\n\n";

  bench::CsvWriter csv("bench_serve",
                       {"graph", "clients", "batch_max", "window_us",
                        "requests", "seconds", "rps", "p50_ms", "p99_ms",
                        "mean_batch", "failures", "speedup_vs_unbatched"});

  // Client levels: powers of two up to the max (always including it),
  // so the interesting regime -- more clients than workers -- is hit
  // even at the default GRAFTMATCH_CLIENTS=4.
  std::vector<int> levels;
  for (int clients = 1; clients < clients_max; clients *= 2) {
    levels.push_back(clients);
  }
  levels.push_back(clients_max);

  std::cout << "graph            clients  batch   req/s     p50 ms    p99 ms"
            << "    mean|B|   vs unbatched\n";
  double best_speedup_at_4 = 0.0;
  std::string best_graph_at_4;
  std::int64_t total_failures = 0;
  for (std::size_t graph_index = 0; graph_index < roster.size();
       ++graph_index) {
    for (const int clients : levels) {
      // Arm 1: batching off. Arm 2: coalescing up to 2x the client
      // count (so one window can absorb every concurrent caller plus
      // the next closed-loop round).
      const std::size_t batched_max =
          static_cast<std::size_t>(std::max(2, clients * 2));
      double unbatched_rps = 0.0;
      for (const std::size_t batch_max : {std::size_t{1}, batched_max}) {
        const LevelResult level =
            run_level(roster, graph_index, workers, clients,
                      requests_per_client, batch_max, window_us);
        const bool batched = batch_max > 1;
        if (!batched) unbatched_rps = level.rps;
        const double speedup = batched && unbatched_rps > 0.0
                                   ? level.rps / unbatched_rps
                                   : 1.0;
        if (batched && clients >= 4 && speedup > best_speedup_at_4) {
          best_speedup_at_4 = speedup;
          best_graph_at_4 = roster.at(graph_index).name;
        }
        total_failures += level.failures;
        std::printf("%-16s %7d  %5zu   %7.1f   %7.2f   %7.2f   %7.2f   %s\n",
                    roster.at(graph_index).name.c_str(), level.clients,
                    level.batch_max, level.rps, level.p50_ms, level.p99_ms,
                    level.mean_batch,
                    batched ? (std::to_string(speedup) + "x").c_str() : "-");
        csv.row({roster.at(graph_index).name,
                 bench::CsvWriter::cell(
                     static_cast<std::int64_t>(level.clients)),
                 bench::CsvWriter::cell(
                     static_cast<std::int64_t>(level.batch_max)),
                 bench::CsvWriter::cell(window_us),
                 bench::CsvWriter::cell(level.requests),
                 bench::CsvWriter::cell(level.seconds),
                 bench::CsvWriter::cell(level.rps),
                 bench::CsvWriter::cell(level.p50_ms),
                 bench::CsvWriter::cell(level.p99_ms),
                 bench::CsvWriter::cell(level.mean_batch),
                 bench::CsvWriter::cell(level.failures),
                 bench::CsvWriter::cell(batched ? speedup : 1.0)});
      }
    }
  }

  std::cout << "\nbest batched-vs-unbatched speedup at >= 4 clients: "
            << best_speedup_at_4 << "x"
            << (best_graph_at_4.empty() ? "" : " (" + best_graph_at_4 + ")")
            << "\n";
  std::cout << "artifact: " << csv.path() << "\n";
  if (total_failures > 0) {
    std::cerr << "bench_serve: " << total_failures
              << " request(s) failed the cardinality/ok gate\n";
    return 1;
  }
  if (clients_max >= 4 && best_speedup_at_4 <= 1.0) {
    std::cerr << "bench_serve: batching showed no win at >= 4 clients "
              << "(best " << best_speedup_at_4 << "x)\n";
    return 1;
  }
  return 0;
}
