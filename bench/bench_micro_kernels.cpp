// Micro-kernel benchmarks (google-benchmark): the runtime-substrate
// primitives the matching kernels are built from, plus small end-to-end
// algorithm runs for quick regression tracking.
#include <benchmark/benchmark.h>

#include <vector>

#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/alias_table.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"

namespace {

using namespace graftmatch;

void BM_FrontierQueueSerialPush(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  FrontierQueue<vid_t> queue(count);
  for (auto _ : state) {
    queue.clear();
    for (std::size_t i = 0; i < count; ++i) {
      queue.push(static_cast<vid_t>(i));
    }
    benchmark::DoNotOptimize(queue.items().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_FrontierQueueSerialPush)->Arg(1 << 12)->Arg(1 << 16);

void BM_FrontierQueueHandlePush(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  FrontierQueue<vid_t> queue(count);
  for (auto _ : state) {
    queue.clear();
    {
      auto handle = queue.handle();
      for (std::size_t i = 0; i < count; ++i) {
        handle.push(static_cast<vid_t>(i));
      }
    }
    benchmark::DoNotOptimize(queue.items().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_FrontierQueueHandlePush)->Arg(1 << 12)->Arg(1 << 16);

void BM_ClaimFlag(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> flags(count, 0);
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(flags.begin(), flags.end(), 0);
    state.ResumeTiming();
    for (std::size_t i = 0; i < count; ++i) {
      benchmark::DoNotOptimize(claim_flag(flags[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ClaimFlag)->Arg(1 << 16);

void BM_AliasTableSample(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(count);
  for (std::size_t i = 0; i < count; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  const AliasTable table{std::span<const double>(weights)};
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasTableSample)->Arg(1 << 16);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_CsrConstruction(benchmark::State& state) {
  ErdosRenyiParams params;
  params.nx = params.ny = state.range(0);
  params.edges = 8 * state.range(0);
  const BipartiteGraph prototype = generate_erdos_renyi(params);
  const EdgeList edges = prototype.to_edges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BipartiteGraph::from_edges(edges));
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_CsrConstruction)->Arg(1 << 14);

void BM_KarpSipser(benchmark::State& state) {
  ChungLuParams params;
  params.nx = params.ny = state.range(0);
  params.avg_degree = 8.0;
  const BipartiteGraph g = generate_chung_lu(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(karp_sipser(g).cardinality());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KarpSipser)->Arg(1 << 14);

void BM_RandomizedGreedy(benchmark::State& state) {
  ChungLuParams params;
  params.nx = params.ny = state.range(0);
  params.avg_degree = 8.0;
  const BipartiteGraph g = generate_chung_lu(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(randomized_greedy(g, 1).cardinality());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_RandomizedGreedy)->Arg(1 << 14);

// End-to-end algorithm micro-runs on a fixed mid-size web-like graph.
const BipartiteGraph& micro_graph() {
  static const BipartiteGraph g = [] {
    WebCrawlParams params;
    params.nx = params.ny = 1 << 15;
    params.seed = 3;
    return generate_webcrawl(params);
  }();
  return g;
}

void BM_MsBfsGraft(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(g, m);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_MsBfsGraft)->Unit(benchmark::kMillisecond);

void BM_PothenFan(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = pothen_fan(g, m);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_PothenFan)->Unit(benchmark::kMillisecond);

void BM_HopcroftKarp(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = hopcroft_karp(g, m);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_HopcroftKarp)->Unit(benchmark::kMillisecond);

void BM_KoenigCertificate(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  Matching m = randomized_greedy(g, 1);
  ms_bfs_graft(g, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_maximum_matching(g, m));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KoenigCertificate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
