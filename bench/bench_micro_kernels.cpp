// Micro-kernel benchmarks (google-benchmark): the runtime-substrate
// primitives the matching kernels are built from, plus small end-to-end
// algorithm runs for quick regression tracking.
//
// Results additionally land in $GRAFTMATCH_RESULTS_DIR/micro_kernels.csv
// (one row per benchmark), so the byte-array-vs-bitmap kernel choice in
// the bottom-up inner loop is a recorded measurement, not an assertion.
#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/alias_table.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/epoch_array.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"

namespace {

using namespace graftmatch;

void BM_FrontierQueueSerialPush(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  FrontierQueue<vid_t> queue(count);
  for (auto _ : state) {
    queue.clear();
    for (std::size_t i = 0; i < count; ++i) {
      queue.push(static_cast<vid_t>(i));
    }
    benchmark::DoNotOptimize(queue.items().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_FrontierQueueSerialPush)->Arg(1 << 12)->Arg(1 << 16);

void BM_FrontierQueueHandlePush(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  FrontierQueue<vid_t> queue(count);
  for (auto _ : state) {
    queue.clear();
    {
      auto handle = queue.handle();
      for (std::size_t i = 0; i < count; ++i) {
        handle.push(static_cast<vid_t>(i));
      }
    }
    benchmark::DoNotOptimize(queue.items().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_FrontierQueueHandlePush)->Arg(1 << 12)->Arg(1 << 16);

void BM_ClaimFlag(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> flags(count, 0);
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(flags.begin(), flags.end(), 0);
    state.ResumeTiming();
    for (std::size_t i = 0; i < count; ++i) {
      benchmark::DoNotOptimize(claim_flag(flags[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ClaimFlag)->Arg(1 << 16);

void BM_AliasTableSample(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(count);
  for (std::size_t i = 0; i < count; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  const AliasTable table{std::span<const double>(weights)};
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasTableSample)->Arg(1 << 16);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_CsrConstruction(benchmark::State& state) {
  ErdosRenyiParams params;
  params.nx = params.ny = state.range(0);
  params.edges = 8 * state.range(0);
  const BipartiteGraph prototype = generate_erdos_renyi(params);
  const EdgeList edges = prototype.to_edges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BipartiteGraph::from_edges(edges));
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_CsrConstruction)->Arg(1 << 14);

void BM_KarpSipser(benchmark::State& state) {
  ChungLuParams params;
  params.nx = params.ny = state.range(0);
  params.avg_degree = 8.0;
  const BipartiteGraph g = generate_chung_lu(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(karp_sipser(g).cardinality());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KarpSipser)->Arg(1 << 14);

void BM_RandomizedGreedy(benchmark::State& state) {
  ChungLuParams params;
  params.nx = params.ny = state.range(0);
  params.avg_degree = 8.0;
  const BipartiteGraph g = generate_chung_lu(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(randomized_greedy(g, 1).cardinality());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_RandomizedGreedy)->Arg(1 << 14);

// End-to-end algorithm micro-runs on a fixed mid-size web-like graph.
const BipartiteGraph& micro_graph() {
  static const BipartiteGraph g = [] {
    WebCrawlParams params;
    params.nx = params.ny = 1 << 15;
    params.seed = 3;
    return generate_webcrawl(params);
  }();
  return g;
}

void BM_MsBfsGraft(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(g, m);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_MsBfsGraft)->Unit(benchmark::kMillisecond);

// Word-vs-bit / fixed-vs-adaptive A/B on the same graph and initial
// matching as BM_MsBfsGraft: the four rows land side by side in the
// CSV, so the kernel and policy choices stay recorded measurements.
void BM_MsBfsGraftWord(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  RunConfig config;
  config.bottom_up_kernel = BottomUpKernel::kWord;
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(g, m, config);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_MsBfsGraftWord)->Unit(benchmark::kMillisecond);

void BM_MsBfsGraftAdaptive(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  RunConfig config;
  config.direction_policy = DirectionPolicy::kAdaptive;
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(g, m, config);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_MsBfsGraftAdaptive)->Unit(benchmark::kMillisecond);

void BM_MsBfsGraftAdaptiveWord(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  RunConfig config;
  config.direction_policy = DirectionPolicy::kAdaptive;
  config.bottom_up_kernel = BottomUpKernel::kWord;
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(g, m, config);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_MsBfsGraftAdaptiveWord)->Unit(benchmark::kMillisecond);

void BM_PothenFan(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = pothen_fan(g, m);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_PothenFan)->Unit(benchmark::kMillisecond);

void BM_HopcroftKarp(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  const Matching initial = randomized_greedy(g, 1);
  for (auto _ : state) {
    Matching m = initial;
    const RunStats stats = hopcroft_karp(g, m);
    benchmark::DoNotOptimize(stats.final_cardinality);
  }
}
BENCHMARK(BM_HopcroftKarp)->Unit(benchmark::kMillisecond);

void BM_KoenigCertificate(benchmark::State& state) {
  const BipartiteGraph& g = micro_graph();
  Matching m = randomized_greedy(g, 1);
  ms_bfs_graft(g, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_maximum_matching(g, m));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KoenigCertificate)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Bottom-up eligibility representations: byte arrays vs packed bitmap.
//
// The bottom-up inner loop asks, per reverse edge, "does x sit in an
// active tree". The pre-epoch layout answered with two DEPENDENT loads
// (root_of[x], then leaf_of[that root]); the current kernel answers
// with one bit test against the per-pass active_x bitmap. These entries
// measure exactly that load chain over a real reverse-CSR scan so the
// representation choice stays a recorded number. State is read-only per
// iteration (no claims), isolating the eligibility cost from the
// attach/queue machinery measured elsewhere.
struct BottomUpScenario {
  BipartiteGraph graph;
  std::vector<vid_t> root_of;        // byte/word layout: x -> its root
  std::vector<vid_t> leaf_of;        // byte/word layout: root -> leaf
  AtomicBitmap active;               // packed layout: one bit per x
  std::vector<std::uint8_t> visited; // byte layout: one byte per y
  AtomicBitmap visited_bits;         // packed layout: one bit per y
};

// `active_every`: 1-in-N X vertices are in a live tree (the bottom-up
// sweep runs when frontiers are LARGE, but per-edge hit rates stay well
// below 1; 1/8 is representative of mid-phase road/web instances).
// `visited_every`: 1-in-N Y vertices already visited.
const BottomUpScenario& bottom_up_scenario() {
  static const BottomUpScenario s = [] {
    BottomUpScenario out;
    WebCrawlParams params;
    params.nx = params.ny = 1 << 16;
    params.seed = 9;
    out.graph = generate_webcrawl(params);
    const vid_t nx = out.graph.num_x();
    const vid_t ny = out.graph.num_y();
    out.root_of.assign(static_cast<std::size_t>(nx), kInvalidVertex);
    out.leaf_of.assign(static_cast<std::size_t>(nx), kInvalidVertex);
    out.active.reset(static_cast<std::size_t>(nx));
    out.visited.assign(static_cast<std::size_t>(ny), 0);
    out.visited_bits.reset(static_cast<std::size_t>(ny));
    Xoshiro256 rng(41);
    for (vid_t x = 0; x < nx; ++x) {
      if (rng.below(8) != 0) continue;
      const auto root = static_cast<vid_t>(rng.below(
          static_cast<std::uint64_t>(nx)));
      out.root_of[static_cast<std::size_t>(x)] = root;
      // Half the referenced trees are dead (their root has a leaf):
      // the byte layout must pay the second load to find out.
      const bool dead = rng.below(2) == 0;
      out.leaf_of[static_cast<std::size_t>(root)] =
          dead ? root : kInvalidVertex;
      if (!dead) out.active.set_serial(static_cast<std::size_t>(x));
    }
    for (vid_t y = 0; y < ny; ++y) {
      if (rng.below(4) == 0) continue;  // 3-in-4 visited
      out.visited[static_cast<std::size_t>(y)] = 1;
      out.visited_bits.set_serial(static_cast<std::size_t>(y));
    }
    return out;
  }();
  return s;
}

// Byte/word layout: eligibility is root_of[x] (load 1) being valid and
// leaf_of[root] (dependent load 2) being clear -- the pre-epoch
// in_active_tree chain, inlined.
void BM_BottomUpEligibilityByteArrays(benchmark::State& state) {
  const BottomUpScenario& s = bottom_up_scenario();
  const engine::Adjacency adj = engine::y_adjacency(s.graph);
  const vid_t ny = s.graph.num_y();
  std::int64_t edges = 0;
  for (auto _ : state) {
    std::int64_t attached = 0;
    edges = 0;
    for (vid_t y = 0; y < ny; ++y) {
      if (s.visited[static_cast<std::size_t>(y)] != 0) continue;
      for (const vid_t x : adj.of(y)) {
        ++edges;
        const vid_t root = s.root_of[static_cast<std::size_t>(x)];
        if (root == kInvalidVertex) continue;
        if (s.leaf_of[static_cast<std::size_t>(root)] != kInvalidVertex) {
          continue;
        }
        ++attached;
        break;
      }
    }
    benchmark::DoNotOptimize(attached);
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_BottomUpEligibilityByteArrays)->Unit(benchmark::kMillisecond);

// Packed layout: the same scan with eligibility collapsed to one
// active_x bit test and visited packed to one bit per y.
void BM_BottomUpEligibilityBitmap(benchmark::State& state) {
  const BottomUpScenario& s = bottom_up_scenario();
  const engine::Adjacency adj = engine::y_adjacency(s.graph);
  const vid_t ny = s.graph.num_y();
  std::int64_t edges = 0;
  for (auto _ : state) {
    std::int64_t attached = 0;
    edges = 0;
    for (vid_t y = 0; y < ny; ++y) {
      if (s.visited_bits.test(static_cast<std::size_t>(y))) continue;
      for (const vid_t x : adj.of(y)) {
        ++edges;
        if (!s.active.test(static_cast<std::size_t>(x))) continue;
        ++attached;
        break;
      }
    }
    benchmark::DoNotOptimize(attached);
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_BottomUpEligibilityBitmap)->Unit(benchmark::kMillisecond);

// Candidate compaction: rebuild the bottom-up candidate list (all
// unvisited y) from each representation. Byte layout tests every
// element through collect_if; packed layout iterates zero bits with
// count-trailing-zeros, skipping all-ones words in one compare.
void BM_CompactUnvisitedByteArray(benchmark::State& state) {
  const BottomUpScenario& s = bottom_up_scenario();
  const vid_t ny = s.graph.num_y();
  FrontierQueue<vid_t> out(static_cast<std::size_t>(ny));
  for (auto _ : state) {
    out.clear();
    engine::collect_if(ny, out, [&](vid_t y) {
      return s.visited[static_cast<std::size_t>(y)] == 0;
    });
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ny));
}
BENCHMARK(BM_CompactUnvisitedByteArray);

void BM_CompactUnvisitedBitmap(benchmark::State& state) {
  const BottomUpScenario& s = bottom_up_scenario();
  const vid_t ny = s.graph.num_y();
  FrontierQueue<vid_t> out(static_cast<std::size_t>(ny));
  for (auto _ : state) {
    out.clear();
    engine::for_each_zero_bit(s.visited_bits.words(),
                              static_cast<std::int64_t>(ny), out,
                              [](std::int64_t y, auto& handle) {
                                handle.push(static_cast<vid_t>(y));
                              });
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ny));
}
BENCHMARK(BM_CompactUnvisitedBitmap);

// Claim granularity: 64 per-bit fetch_or claims vs one claim_word CAS
// per word -- the primitive trade the word-level bottom-up kernel
// makes (runtime/epoch_array.hpp).
void BM_ClaimBitsPerBit(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  AtomicBitmap bits;
  bits.reset(count);
  for (auto _ : state) {
    state.PauseTiming();
    bits.clear_all();
    state.ResumeTiming();
    std::int64_t won = 0;
    for (std::size_t i = 0; i < count; ++i) {
      won += bits.claim(i) ? 1 : 0;
    }
    benchmark::DoNotOptimize(won);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ClaimBitsPerBit)->Arg(1 << 16);

void BM_ClaimWholeWords(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  AtomicBitmap bits;
  bits.reset(count);
  const std::size_t words = bits.word_count();
  for (auto _ : state) {
    state.PauseTiming();
    bits.clear_all();
    state.ResumeTiming();
    std::int64_t won = 0;
    for (std::size_t w = 0; w < words; ++w) {
      won += std::popcount(bits.claim_word(w, ~std::uint64_t{0}));
    }
    benchmark::DoNotOptimize(won);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ClaimWholeWords)->Arg(1 << 16);

// Cardinality gate over the full policy x kernel matrix: every
// combination must reproduce the oracle cardinality on each roster
// instance (scaled by --size). A perf A/B from an arm that gets the
// answer wrong is worse than no A/B, so main() turns any mismatch into
// a nonzero exit for CI.
int run_cardinality_gate() {
  const std::vector<std::string> roster = {"hugetrace-like", "copapers-like",
                                           "wikipedia-like"};
  const DirectionPolicy policies[] = {
      DirectionPolicy::kFixed, DirectionPolicy::kAdaptive,
      DirectionPolicy::kTopDown, DirectionPolicy::kBottomUp};
  const BottomUpKernel kernels[] = {BottomUpKernel::kBit,
                                    BottomUpKernel::kWord};
  int failures = 0;
  std::printf("\ncardinality gate: 4 policies x 2 kernels on %zu instances\n",
              roster.size());
  for (const std::string& name : roster) {
    const bench::Workload w = bench::make_workload(name);
    const std::int64_t oracle = maximum_matching_cardinality(w.graph);
    for (const DirectionPolicy policy : policies) {
      for (const BottomUpKernel kernel : kernels) {
        RunConfig config;
        config.direction_policy = policy;
        config.bottom_up_kernel = kernel;
        Matching m = bench::make_initial_matching(w.graph);
        const RunStats stats = ms_bfs_graft(w.graph, m, config);
        if (stats.final_cardinality != oracle) {
          ++failures;
          std::fprintf(stderr,
                       "CARDINALITY MISMATCH on %s (dirsel=%s kernel=%s): "
                       "got %lld, oracle %lld\n",
                       w.name.c_str(), to_string(policy).c_str(),
                       to_string(kernel).c_str(),
                       static_cast<long long>(stats.final_cardinality),
                       static_cast<long long>(oracle));
        }
      }
    }
  }
  std::printf("cardinality gate: %s\n",
              failures == 0 ? "all combinations match the oracle" : "FAILED");
  return failures;
}

// Console output plus a CSV artifact: every per-iteration run lands as
// one row in $GRAFTMATCH_RESULTS_DIR/micro_kernels.csv so CI can diff
// the byte-vs-bitmap numbers across commits.
class CsvTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      double items_per_second = 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) items_per_second = it->second;
      rows_.push_back({run.benchmark_name(),
                       bench::CsvWriter::cell(run.GetAdjustedRealTime()),
                       benchmark::GetTimeUnitString(run.time_unit),
                       bench::CsvWriter::cell(items_per_second),
                       bench::CsvWriter::cell(
                           static_cast<std::int64_t>(run.iterations))});
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  graftmatch::bench::apply_cli_overrides(argc, argv);
  CsvTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  graftmatch::bench::CsvWriter csv(
      "micro_kernels",
      {"benchmark", "real_time", "time_unit", "items_per_sec", "iterations"});
  for (const auto& row : reporter.rows()) csv.row(row);
  std::printf("CSV artifact: %s\n", csv.path().c_str());
  return run_cardinality_gate() == 0 ? 0 : 1;
}
