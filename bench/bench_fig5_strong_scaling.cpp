// Fig. 5 reproduction: strong scaling of MS-BFS-Graft per graph class.
//
// The paper plots speedup vs thread count (up to 40 cores / 80 threads
// on Mirasol, 24/48 on Edison), averaged per class. The reproduction
// substrate is a single-core container, so this bench reports the same
// table -- speedup of T threads over 1 thread, averaged per class -- and
// labels it honestly: with one physical core the curve measures parallel
// OVERHEAD (values <= 1.0 expected); on a real multicore the same binary
// produces the paper's rising curves.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_fig5_strong_scaling",
               "Fig. 5 (strong scaling of MS-BFS-Graft by graph class)");

  const int runs = run_count(3);
  const int max_cpu = logical_cpu_count();
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_cpu * 2; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_cpu * 2) {
    thread_counts.push_back(max_cpu * 2);  // hyperthreading analogue
  }

  if (max_cpu == 1) {
    std::printf("NOTE: 1 physical core detected -- speedups measure "
                "parallel overhead, not scaling.\n\n");
  }

  const std::vector<Workload> workloads = make_suite_workloads(false);

  // class -> threads -> accumulated speedup
  std::map<std::string, std::map<int, std::vector<double>>> table;

  for (const Workload& w : workloads) {
    double serial_seconds = 0.0;
    for (const int threads : thread_counts) {
      RunConfig config;
      config.threads = threads;
      config.pin = PinPolicy::kCompact;  // the paper's placement
      const double mean = mean_std(time_matching_runs(
                                       w.graph, runs,
                                       [&](const BipartiteGraph& g,
                                           Matching& m) {
                                         return ms_bfs_graft(g, m, config);
                                       })
                                       .seconds)
                              .mean;
      if (threads == 1) serial_seconds = mean;
      table[to_string(w.graph_class)][threads].push_back(
          serial_seconds / mean);
    }
  }

  std::printf("%-12s", "class");
  for (const int threads : thread_counts) std::printf(" %7dT", threads);
  std::printf("\n%s\n", std::string(12 + 8 * thread_counts.size(), '-').c_str());
  for (const auto& [cls, per_thread] : table) {
    std::printf("%-12s", cls.c_str());
    for (const int threads : thread_counts) {
      const auto& samples = per_thread.at(threads);
      double sum = 0.0;
      for (const double s : samples) sum += s;
      std::printf(" %7.2f",
                  sum / static_cast<double>(samples.size()));
    }
    std::printf("\n");
  }
  std::printf("\nvalues = average speedup over the 1-thread run (paper "
              "reports ~15x at 40 cores,\n~12x at 24, +20%% from "
              "hyperthreading).\n");
  return 0;
}
