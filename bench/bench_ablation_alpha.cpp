// Ablation: sensitivity to the alpha parameter, fixed vs adaptive.
//
// Alpha controls both the top-down/bottom-up switch and the
// graft-vs-rebuild decision (Sec. III-B: "we found that alpha ~= 5
// performs better for the MS-BFS-Graft algorithm"). This bench sweeps
// alpha and reports runtime and traversed edges on one fig4-roster
// instance per class, reproducing the design-choice evidence behind
// that sentence -- and runs the same sweep under the adaptive
// (scout/awake) direction policy, which reuses alpha as its edge-mass
// threshold, so the fixed rule and the Beamer-style policy are directly
// comparable row by row (the `policy` column in the CSV).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_ablation_alpha",
               "Sec. III-B design choice (alpha ~= 5): runtime and edge "
               "traversals vs alpha, fixed vs adaptive direction policy");

  const int runs = run_count(3);
  const std::vector<double> alphas = {1.5, 2.0, 3.0, 5.0, 8.0, 16.0, 64.0};
  const std::vector<std::string> graphs = {"hugetrace-like", "copapers-like",
                                           "wikipedia-like"};
  const std::vector<DirectionPolicy> policies = {DirectionPolicy::kFixed,
                                                 DirectionPolicy::kAdaptive};
  CsvWriter csv("ablation_alpha",
                {"instance", "class", "policy", "alpha", "seconds", "edges",
                 "phases", "bottom_up_levels", "switches", "cardinality"});

  for (const std::string& name : graphs) {
    const Workload w = make_workload(name);
    std::printf("--- %s\n", w.name.c_str());
    std::printf("%-9s %8s %12s %14s %8s %6s\n", "policy", "alpha", "time",
                "edges", "phases", "b-up");
    for (const DirectionPolicy policy : policies) {
      for (const double alpha : alphas) {
        RunConfig config;
        config.alpha = alpha;
        config.direction_policy = policy;
        config.bottom_up_kernel = bottom_up_kernel();
        const TimedResult timed = time_matching_runs(
            w.graph, runs, [&](const BipartiteGraph& g, Matching& m) {
              return ms_bfs_graft(g, m, config);
            });
        const RunStats& stats = timed.last;
        std::printf("%-9s %8.1f %12s %14lld %8lld %6lld\n",
                    to_string(policy).c_str(), alpha,
                    format_seconds(mean_std(timed.seconds).mean).c_str(),
                    static_cast<long long>(stats.edges_traversed),
                    static_cast<long long>(stats.phases),
                    static_cast<long long>(stats.direction.bottom_up_levels));
        csv.row({w.name, to_string(w.graph_class), to_string(policy),
                 CsvWriter::cell(alpha),
                 CsvWriter::cell(mean_std(timed.seconds).mean),
                 CsvWriter::cell(stats.edges_traversed),
                 CsvWriter::cell(stats.phases),
                 CsvWriter::cell(stats.direction.bottom_up_levels),
                 CsvWriter::cell(stats.direction.switches),
                 CsvWriter::cell(stats.final_cardinality)});
      }
    }
    std::printf("\n");
  }
  std::printf("csv: %s\n", csv.path().c_str());
  return 0;
}
