// Ablation: sensitivity to the alpha parameter.
//
// Alpha controls both the top-down/bottom-up switch and the
// graft-vs-rebuild decision (Sec. III-B: "we found that alpha ~= 5
// performs better for the MS-BFS-Graft algorithm"). This bench sweeps
// alpha and reports runtime and traversed edges on one instance per
// class, reproducing the design-choice evidence behind that sentence.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_ablation_alpha",
               "Sec. III-B design choice (alpha ~= 5): runtime and edge "
               "traversals vs alpha");

  const int runs = run_count(3);
  const std::vector<double> alphas = {1.5, 2.0, 3.0, 5.0, 8.0, 16.0, 64.0};
  const std::vector<std::string> graphs = {"hugetrace-like", "copapers-like",
                                           "wikipedia-like"};

  for (const std::string& name : graphs) {
    const Workload w = make_workload(name);
    std::printf("--- %s\n", w.name.c_str());
    std::printf("%8s %12s %14s %8s\n", "alpha", "time", "edges", "phases");
    for (const double alpha : alphas) {
      RunConfig config;
      config.alpha = alpha;
      const TimedResult timed = time_matching_runs(
          w.graph, runs, [&](const BipartiteGraph& g, Matching& m) {
            return ms_bfs_graft(g, m, config);
          });
      std::printf("%8.1f %12s %14lld %8lld\n", alpha,
                  format_seconds(mean_std(timed.seconds).mean).c_str(),
                  static_cast<long long>(timed.last.edges_traversed),
                  static_cast<long long>(timed.last.phases));
    }
    std::printf("\n");
  }
  return 0;
}
