// Fig. 1 reproduction: algorithmic properties of five serial maximum-
// matching algorithms on one representative graph per class.
//
//   Fig. 1(a): number of edges traversed
//   Fig. 1(b): number of phases
//   Fig. 1(c): average length of augmenting paths
//
// The paper compares SS-DFS, SS-BFS, PF, MS-BFS, HK on kkt_power,
// cit-Patents and wikipedia; we use the corresponding stand-ins. All
// algorithms start from the same initial matching.
//
// Expected shapes (paper Sec. II-D): DFS-based searches traverse the
// most edges and find the longest paths; MS-BFS needs the fewest phases;
// HK needs more phases than MS-BFS despite its sqrt(n) bound; BFS-based
// algorithms find near-shortest paths.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_fig1_algorithm_properties",
               "Fig. 1 (edges traversed / phases / augmenting path length "
               "of five serial algorithms)");

  CsvWriter csv("fig1_algorithm_properties",
                {"graph", "algorithm", "edges_traversed", "phases",
                 "augmenting_paths", "avg_path_length", "seconds"});

  const std::vector<std::string> graphs = {"kkt_power-like",
                                           "cit-patents-like",
                                           "wikipedia-like"};
  // Fig. 1 is a serial comparison: every registered solver runs at one
  // thread (the paper's five algorithms plus later registry additions).
  RunConfig serial;
  serial.threads = 1;
  const std::vector<std::string> algorithms = {"ssdfs", "ssbfs", "pf",
                                               "msbfs", "hk"};

  for (const std::string& graph_name : graphs) {
    const Workload w = make_workload(graph_name);
    const Matching initial = make_initial_matching(w.graph);
    std::printf("--- %s (stands in for %s): |V|=%lld |E|=%lld init=%lld\n",
                w.name.c_str(), w.paper_name.c_str(),
                static_cast<long long>(w.graph.num_x() + w.graph.num_y()),
                static_cast<long long>(w.graph.num_edges()),
                static_cast<long long>(initial.cardinality()));
    std::printf("%-8s %14s %8s %10s %10s %12s\n", "algo", "edges", "phases",
                "paths", "avg_len", "time");
    for (const std::string& key : algorithms) {
      const engine::SolverInfo& solver = engine::find_solver(key);
      Matching m = initial;
      const RunStats stats = solver.run(w.graph, m, serial);
      std::printf("%-8s %14lld %8lld %10lld %10.2f %12s\n",
                  solver.display_name.c_str(),
                  static_cast<long long>(stats.edges_traversed),
                  static_cast<long long>(stats.phases),
                  static_cast<long long>(stats.augmentations),
                  stats.avg_path_length(),
                  format_seconds(stats.seconds).c_str());
      csv.row({w.name, solver.display_name,
               CsvWriter::cell(stats.edges_traversed),
               CsvWriter::cell(stats.phases),
               CsvWriter::cell(stats.augmentations),
               CsvWriter::cell(stats.avg_path_length()),
               CsvWriter::cell(stats.seconds)});
    }
    std::printf("\n");
  }
  std::printf("csv: %s\n", csv.path().c_str());
  return 0;
}
