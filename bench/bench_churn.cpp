// Dynamic matching under edge churn: when does incremental
// re-augmentation beat re-solving from scratch?
//
// For every suite instance and a sweep of batch sizes, replays the SAME
// sliding-window churn stream (remove a batch of live edges, re-add it)
// through two arms:
//   incremental: DynamicMatcher with the default staleness gate, so
//                batches are absorbed by localized alternating-BFS
//                re-augmentation and the engine re-solve only fires
//                when the delta fraction trips
//   resolve    : DynamicMatcher with staleness_delta_fraction = 0, so
//                EVERY batch falls through to a full engine re-solve on
//                the compacted graph -- the "just re-run the solver"
//                baseline with identical overlay bookkeeping
// Both arms see identical live edge sets after every batch, so their
// cardinalities must agree batch by batch, and the final matching must
// hit the instance's true maximum (the live set returns to the input
// graph). Any mismatch exits non-zero -- the smoke run is a
// correctness gate, not just a timing.
//
// Knobs: GRAFTMATCH_BATCH pins one batch size (default sweeps 1, 4,
// 16, 64, 256), GRAFTMATCH_BATCHES sets remove+re-add rounds per cell,
// GRAFTMATCH_WINDOW localizes churn to a fraction of the edge list.
// The CSV artifact (bench_churn.csv) carries the full crossover curve;
// docs/DYNAMIC.md records measured numbers.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace {

using namespace graftmatch;

struct ArmResult {
  double seconds = 0.0;
  std::int64_t final_cardinality = 0;
  std::int64_t resolves = 0;
  std::int64_t reaugment_paths = 0;
  bool parity = true;  ///< arm-vs-arm cardinality equal after every batch
};

/// Replay `stream` (pairs of remove-then-re-add batches) through a
/// matcher; `other` (when non-null) is the already-computed cardinality
/// trajectory of the other arm, checked batch by batch.
ArmResult replay(SessionContext& session, const BipartiteGraph& g,
                 const dynamic::DynamicConfig& config,
                 const std::vector<std::vector<Edge>>& stream,
                 const std::vector<std::int64_t>* other,
                 std::vector<std::int64_t>* trajectory) {
  ArmResult result;
  dynamic::DynamicMatcher matcher(session, g, config);
  const Timer timer;
  for (std::size_t b = 0; b < stream.size(); ++b) {
    matcher.remove_edges(stream[b]);
    matcher.add_edges(stream[b]);
    const std::int64_t card = matcher.cardinality();
    if (trajectory != nullptr) trajectory->push_back(card);
    if (other != nullptr && (*other)[b] != card) result.parity = false;
  }
  result.seconds = timer.elapsed();
  result.final_cardinality = matcher.cardinality();
  const RunStats stats = matcher.stats();
  result.resolves = stats.dynamic.resolves;
  result.reaugment_paths = stats.dynamic.reaugment_paths;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_churn",
              "incremental dynamic matching vs per-batch full re-solve "
              "under sliding-window edge churn");

  const int rounds = churn_batch_count(32);
  const double window_fraction = churn_window_fraction(0.1);
  std::vector<int> batch_sizes = {1, 4, 16, 64, 256};
  if (churn_batch_size() > 0) batch_sizes = {churn_batch_size()};
  std::printf("churn     : %d remove+re-add rounds per cell, window %.3g "
              "of the edge list, batch sizes",
              rounds, window_fraction);
  for (const int b : batch_sizes) std::printf(" %d", b);
  std::printf("\n\n");

  CsvWriter csv("bench_churn",
                {"instance", "class", "nx", "ny", "edges", "batch", "rounds",
                 "updates", "incremental_seconds", "resolve_seconds",
                 "incremental_updates_per_s", "resolve_updates_per_s",
                 "speedup", "incremental_resolves", "reaugment_paths",
                 "cardinality"});

  bool all_consistent = true;
  std::printf("%-18s %7s %11s %13s %13s %8s\n", "instance", "batch",
              "updates", "incremental", "resolve", "speedup");
  for (const Workload& w : make_suite_workloads(false)) {
    if (!instance_selected(w.name)) continue;
    if (w.graph.num_edges() == 0) continue;
    const std::int64_t maximum = maximum_matching_cardinality(w.graph);
    double crossover = -1.0;  // first batch size where re-solve wins
    for (const int batch : batch_sizes) {
      // One deterministic stream per cell: a seeded shuffle localizes
      // the churn window, then `rounds` consecutive batches cycle
      // through it. Both arms replay exactly these edges.
      std::vector<Edge> edges = w.graph.to_edges().edges;
      Xoshiro256 rng(seed() ^ static_cast<std::uint64_t>(batch));
      for (std::size_t i = edges.size(); i > 1; --i) {
        std::swap(edges[rng.below(i)], edges[i - 1]);
      }
      const std::size_t window = std::max<std::size_t>(
          static_cast<std::size_t>(batch),
          std::min(edges.size(),
                   static_cast<std::size_t>(
                       window_fraction *
                       static_cast<double>(edges.size()))));
      std::vector<std::vector<Edge>> stream;
      std::size_t cursor = 0;
      for (int r = 0; r < rounds; ++r) {
        std::vector<Edge> b;
        for (int k = 0; k < batch; ++k) {
          b.push_back(edges[cursor]);
          cursor = (cursor + 1) % window;
        }
        stream.push_back(std::move(b));
      }

      SessionContext session;
      dynamic::DynamicConfig incremental;
      incremental.run.threads = thread_override();
      incremental.run.seed = seed();
      dynamic::DynamicConfig resolve = incremental;
      resolve.staleness_delta_fraction = 0.0;  // re-solve every batch

      std::vector<std::int64_t> trajectory;
      const ArmResult inc = replay(session, w.graph, incremental, stream,
                                   nullptr, &trajectory);
      const ArmResult res =
          replay(session, w.graph, resolve, stream, &trajectory, nullptr);

      const auto updates = static_cast<std::int64_t>(2 * batch) * rounds;
      const double inc_ups = inc.seconds > 0.0
                                 ? static_cast<double>(updates) / inc.seconds
                                 : 0.0;
      const double res_ups = res.seconds > 0.0
                                 ? static_cast<double>(updates) / res.seconds
                                 : 0.0;
      const double speedup =
          inc.seconds > 0.0 ? res.seconds / inc.seconds : 0.0;
      if (speedup < 1.0 && crossover < 0.0) crossover = batch;

      // The gate: arms agree after every batch, and the final matching
      // (live set back to the input graph) is a true maximum.
      if (!res.parity || inc.final_cardinality != maximum ||
          res.final_cardinality != maximum) {
        std::fprintf(stderr,
                     "CARDINALITY MISMATCH on %s batch %d: incremental "
                     "%lld, resolve %lld, maximum %lld, parity %s\n",
                     w.name.c_str(), batch,
                     static_cast<long long>(inc.final_cardinality),
                     static_cast<long long>(res.final_cardinality),
                     static_cast<long long>(maximum),
                     res.parity ? "ok" : "BROKEN");
        all_consistent = false;
      }

      std::printf("%-18s %7d %11lld %11.0f/s %11.0f/s %7.2fx\n",
                  w.name.c_str(), batch, static_cast<long long>(updates),
                  inc_ups, res_ups, speedup);
      csv.row({w.name, to_string(w.graph_class),
               CsvWriter::cell(static_cast<std::int64_t>(w.graph.num_x())),
               CsvWriter::cell(static_cast<std::int64_t>(w.graph.num_y())),
               CsvWriter::cell(w.graph.num_edges()),
               CsvWriter::cell(static_cast<std::int64_t>(batch)),
               CsvWriter::cell(static_cast<std::int64_t>(rounds)),
               CsvWriter::cell(updates), CsvWriter::cell(inc.seconds),
               CsvWriter::cell(res.seconds), CsvWriter::cell(inc_ups),
               CsvWriter::cell(res_ups), CsvWriter::cell(speedup),
               CsvWriter::cell(inc.resolves),
               CsvWriter::cell(inc.reaugment_paths),
               CsvWriter::cell(inc.final_cardinality)});
    }
    if (batch_sizes.size() > 1) {
      if (crossover < 0.0) {
        std::printf("%-18s crossover: none (incremental wins at every "
                    "batch size)\n",
                    w.name.c_str());
      } else {
        std::printf("%-18s crossover: re-solve catches up at batch %g\n",
                    w.name.c_str(), crossover);
      }
    }
  }
  std::printf("\ncsv: %s\n", csv.path().c_str());
  return all_consistent ? 0 : 1;
}
