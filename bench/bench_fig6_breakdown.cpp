// Fig. 6 reproduction: breakdown of MS-BFS-Graft runtime into Top-Down,
// Bottom-Up, Augment, Tree-Grafting, and Statistics steps.
//
// Expected shape (paper Sec. V-E): every graph spends >= 40% in BFS
// traversal; high-matching-number graphs (hugetrace, kkt_power) are
// BFS-dominated, while low-matching-number graphs (wb-edu, wikipedia)
// shift weight into Augment + Tree-Grafting.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_fig6_breakdown",
               "Fig. 6 (runtime breakdown per step of MS-BFS-Graft)");

  const std::vector<Workload> workloads = make_suite_workloads(false);
  CsvWriter csv("fig6_breakdown",
                {"instance", "class", "top_down_s", "bottom_up_s",
                 "augment_s", "graft_s", "statistics_s", "other_s",
                 "total_s"});

  std::printf("%-18s %9s %9s %9s %9s %9s %9s   %s\n", "instance", "TopDown",
              "BottomUp", "Augment", "Graft", "Stats", "Other", "total");
  std::printf("%s\n", std::string(96, '-').c_str());

  for (const Workload& w : workloads) {
    Matching m = make_initial_matching(w.graph);
    const RunStats stats = ms_bfs_graft(w.graph, m);
    const double total = stats.seconds > 0 ? stats.seconds : 1.0;
    const StepSeconds& s = stats.step_seconds;
    std::printf("%-18s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%   %s\n",
                w.name.c_str(), 100.0 * s.top_down / total,
                100.0 * s.bottom_up / total, 100.0 * s.augment / total,
                100.0 * s.graft / total, 100.0 * s.statistics / total,
                100.0 * s.other / total,
                format_seconds(stats.seconds).c_str());
    csv.row({w.name, to_string(w.graph_class), CsvWriter::cell(s.top_down),
             CsvWriter::cell(s.bottom_up), CsvWriter::cell(s.augment),
             CsvWriter::cell(s.graft), CsvWriter::cell(s.statistics),
             CsvWriter::cell(s.other), CsvWriter::cell(stats.seconds)});
  }
  std::printf("csv: %s\n", csv.path().c_str());

  std::printf("\nTopDown+BottomUp = BFS traversal (Step 1); Augment = Step "
              "2; Graft+Stats = Step 3.\n");
  return 0;
}
