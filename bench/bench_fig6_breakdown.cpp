// Fig. 6 reproduction: breakdown of MS-BFS-Graft runtime into Top-Down,
// Bottom-Up, Augment, Tree-Grafting, and Statistics steps.
//
// Expected shape (paper Sec. V-E): every graph spends >= 40% in BFS
// traversal; high-matching-number graphs (hugetrace, kkt_power) are
// BFS-dominated, while low-matching-number graphs (wb-edu, wikipedia)
// shift weight into Augment + Tree-Grafting.
//
// In GRAFTMATCH_TRACE=ON builds the bench also arms the obs tracer,
// reconciles the trace-derived step totals against the stopwatch
// columns (every trace span is emitted strictly inside its stopwatch
// lap, so the two must agree within noise), and writes per-phase
// anatomy rows to a second CSV.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace graftmatch;

/// Relative deviation between the stopwatch step columns and the same
/// totals summed from trace spans, as a fraction of the run time.
double reconcile_deviation(const StepSeconds& s,
                           const obs::TraceSummary& summary, double total) {
  const double diff = std::fabs(s.top_down - summary.top_down) +
                      std::fabs(s.bottom_up - summary.bottom_up) +
                      std::fabs(s.augment - summary.augment) +
                      std::fabs(s.graft - summary.graft) +
                      std::fabs(s.statistics - summary.statistics);
  return total > 0 ? diff / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_fig6_breakdown",
               "Fig. 6 (runtime breakdown per step of MS-BFS-Graft)");

  const bool tracing = obs::compiled();
  if (tracing) obs::arm();

  const std::vector<Workload> workloads = make_suite_workloads(false);
  CsvWriter csv("fig6_breakdown",
                {"instance", "class", "top_down_s", "bottom_up_s",
                 "augment_s", "graft_s", "statistics_s", "other_s",
                 "total_s"});
  CsvWriter anatomy_csv("fig6_phase_anatomy", obs::phase_csv_columns());

  std::printf("%-18s %9s %9s %9s %9s %9s %9s   %s\n", "instance", "TopDown",
              "BottomUp", "Augment", "Graft", "Stats", "Other", "total");
  std::printf("%s\n", std::string(96, '-').c_str());

  for (const Workload& w : workloads) {
    Matching m = make_initial_matching(w.graph);
    const RunStats stats = ms_bfs_graft(w.graph, m);
    const double total = stats.seconds > 0 ? stats.seconds : 1.0;
    const StepSeconds& s = stats.step_seconds;
    std::printf("%-18s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%   %s\n",
                w.name.c_str(), 100.0 * s.top_down / total,
                100.0 * s.bottom_up / total, 100.0 * s.augment / total,
                100.0 * s.graft / total, 100.0 * s.statistics / total,
                100.0 * s.other / total,
                format_seconds(stats.seconds).c_str());
    csv.row({w.name, to_string(w.graph_class), CsvWriter::cell(s.top_down),
             CsvWriter::cell(s.bottom_up), CsvWriter::cell(s.augment),
             CsvWriter::cell(s.graft), CsvWriter::cell(s.statistics),
             CsvWriter::cell(s.other), CsvWriter::cell(stats.seconds)});

    if (tracing && stats.obs.collected) {
      const obs::TraceSummary summary = obs::summarize(obs::last_run());
      const double deviation = reconcile_deviation(s, summary, stats.seconds);
      // A warning, not a failure: smoke-size runs measure laps of a few
      // microseconds where clock granularity dominates.
      if (deviation > 0.01) {
        std::printf("  WARN %s: trace/stopwatch step totals deviate %.2f%% "
                    "of the run\n",
                    w.name.c_str(), 100.0 * deviation);
      }
      if (stats.obs.dropped > 0) {
        std::printf("  WARN %s: %lld trace events dropped (raise "
                    "GRAFTMATCH_TRACE_CAPACITY)\n",
                    w.name.c_str(),
                    static_cast<long long>(stats.obs.dropped));
      }
      for (const obs::PhaseAnatomy& row : summary.phases) {
        anatomy_csv.row(obs::phase_csv_row(w.name, row));
      }
    }
  }
  std::printf("csv: %s\n", csv.path().c_str());
  if (tracing) std::printf("csv: %s\n", anatomy_csv.path().c_str());

  std::printf("\nTopDown+BottomUp = BFS traversal (Step 1); Augment = Step "
              "2; Graft+Stats = Step 3.\n");
  return 0;
}
