// Ablation: choice of initializer (Sec. II-B: "we use the Karp-Sipser
// algorithm to initialize all matching algorithms ... one of the best
// initializer algorithms").
//
// Reports, for one instance per class and each initializer (none /
// greedy / randomized greedy / Karp-Sipser / parallel Karp-Sipser):
// initializer time and quality, and the time MS-BFS-Graft then needs to
// finish the job. This is also the bench that documents the DESIGN.md
// initializer substitution: on these synthetic families Karp-Sipser is
// essentially optimal (leaving the maximum-matching phase no work),
// which is why the figure benches default to randomized greedy.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_ablation_init",
               "Sec. II-B design choice (initializer quality and its "
               "effect on the maximum matching phase)");

  struct InitEntry {
    const char* name;
    std::function<Matching(const BipartiteGraph&)> make;
  };
  const std::vector<InitEntry> inits = {
      {"none",
       [](const BipartiteGraph& g) { return Matching(g.num_x(), g.num_y()); }},
      {"greedy", [](const BipartiteGraph& g) { return greedy_maximal(g); }},
      {"rgreedy",
       [](const BipartiteGraph& g) { return randomized_greedy(g, 1); }},
      {"ks-rule1",
       [](const BipartiteGraph& g) { return karp_sipser_rule1(g); }},
      {"karp-sipser", [](const BipartiteGraph& g) { return karp_sipser(g); }},
      {"parallel-ks",
       [](const BipartiteGraph& g) { return parallel_karp_sipser(g); }},
  };

  const std::vector<std::string> graphs = {"kkt_power-like", "rmat-like",
                                           "wikipedia-like"};

  for (const std::string& name : graphs) {
    const Workload w = make_workload(name);
    const std::int64_t maximum = maximum_matching_cardinality(w.graph);
    std::printf("--- %s (|M*| = %lld)\n", w.name.c_str(),
                static_cast<long long>(maximum));
    std::printf("%-14s %12s %10s %12s %10s %12s\n", "initializer",
                "init time", "quality", "graft time", "paths",
                "total time");
    for (const InitEntry& init : inits) {
      const Timer init_timer;
      Matching m = init.make(w.graph);
      const double init_seconds = init_timer.elapsed();
      const double quality = static_cast<double>(m.cardinality()) /
                             static_cast<double>(maximum);
      const RunStats stats = ms_bfs_graft(w.graph, m);
      std::printf("%-14s %12s %10.4f %12s %10lld %12s\n", init.name,
                  format_seconds(init_seconds).c_str(), quality,
                  format_seconds(stats.seconds).c_str(),
                  static_cast<long long>(stats.augmentations),
                  format_seconds(init_seconds + stats.seconds).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
