// Shared helpers for the figure/table reproduction benches.
//
// Environment knobs (all optional):
//   GRAFTMATCH_SIZE    -- workload size factor (default 0.25, the scale
//                         EXPERIMENTS.md records; 1.0 approximates the
//                         paper's UF-collection sizes)
//   GRAFTMATCH_RUNS    -- repetitions per timing (default: per-bench)
//   GRAFTMATCH_SEED    -- generator seed (default 1)
//   GRAFTMATCH_RESULTS_DIR -- directory for the CSV artifacts every
//                         figure bench writes next to its stdout
//                         (default "bench_results/")
//   GRAFTMATCH_INIT    -- initializer: rgreedy (default) | greedy | ks |
//                         ksr1 | none. The paper initializes with Karp-Sipser,
//                         but full-cascade KS is already optimal on the
//                         synthetic stand-in graphs (see DESIGN.md); the
//                         randomized-greedy default preserves the
//                         post-initialization workload the paper's
//                         figures measure. bench_ablation_init
//                         quantifies the difference explicitly.
//   GRAFTMATCH_REDUCE  -- kernelization pre-pass: none (default) | d1 |
//                         d1d2. Benches that honor it route runs
//                         through engine::run_reduced;
//                         bench_reduce_gain measures both arms
//                         explicitly regardless of this knob.
//   GRAFTMATCH_SHARD   -- sharded execution: none (default) | dm.
//                         Benches that time through time_reduced_runs
//                         pick it up (the runs route through
//                         engine::run_sharded); bench_shard_gain
//                         measures both arms explicitly regardless.
//   GRAFTMATCH_DIRSEL  -- traversal-direction policy: fixed (default,
//                         the paper's alpha rule) | adaptive (scout/
//                         awake edge counts with hysteresis) | td | bu
//                         (forced single-direction A/B floors). Benches
//                         that time through time_sharded_runs honor it;
//                         bench_ablation_alpha and bench_fig4 also run
//                         explicit arms regardless.
//   GRAFTMATCH_KERNEL  -- bottom-up kernel: bit (default, per-bit
//                         candidate-pool scan) | word (64-candidate
//                         ctz sweep with word-granular claims). Same
//                         benches as GRAFTMATCH_DIRSEL.
//   GRAFTMATCH_SOLVER  -- registry solver for benches with a
//                         configurable solver (bench_shard_gain);
//                         figure benches that reproduce a specific
//                         algorithm ignore it.
//   GRAFTMATCH_ONLY    -- substring filter on instance names; benches
//                         that honor it skip non-matching workloads
//                         (empty/unset = run everything).
//   GRAFTMATCH_BATCH   -- edges per churn batch for bench_churn
//                         (unset = the bench's default batch-size
//                         sweep 1,4,16,64,256).
//   GRAFTMATCH_BATCHES -- churn batches per (instance, batch-size)
//                         cell (default: per-bench).
//   GRAFTMATCH_WINDOW  -- fraction of each instance's edges cycled by
//                         the churn window, in (0, 1] (default:
//                         per-bench).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch::bench {

/// Parse CLI overrides: --seed=N, --threads=N, --size=F, --runs=N,
/// --init=NAME, --results-dir=DIR (the "--seed N" two-token form works
/// too). Each override is exported through the matching GRAFTMATCH_*
/// environment knob, so the env-reading accessors below stay the single
/// source of truth and the stress/diff corpora (which honor
/// GRAFTMATCH_SEED) share one instance-generation path with the
/// benches. --threads additionally sets the OpenMP default so benches
/// that run at the runtime thread count pick it up. Unknown --options
/// print usage and exit; call first thing in main().
void apply_cli_overrides(int argc, char** argv);

/// The standard bench preamble, all in one call: parse CLI overrides
/// and print the self-describing header. Every bench main() starts with
/// this single line instead of repeating the apply/print pair.
void bench_entry(int argc, char** argv, const std::string& bench_name,
                 const std::string& what);

/// Thread-count override from --threads / GRAFTMATCH_THREADS
/// (0 = keep the OpenMP runtime default).
int thread_override();

/// Workload size factor from GRAFTMATCH_SIZE (default 1.0).
double size_factor();

/// Repetition count from GRAFTMATCH_RUNS (default `fallback`).
int run_count(int fallback);

/// Seed from GRAFTMATCH_SEED (default 1).
std::uint64_t seed();

/// Name of the selected initializer (GRAFTMATCH_INIT). Any key of the
/// engine's initializer registry is accepted.
std::string init_name();

/// Name of the selected solver (GRAFTMATCH_SOLVER / --solver) for
/// benches whose solver is configurable; `fallback` is the bench's
/// default. Any key of the engine's solver registry is accepted
/// (validated where the name is consumed).
std::string solver_name(const std::string& fallback);

/// Substring filter on instance names from GRAFTMATCH_ONLY / --only.
/// Returns true when `name` should run (empty filter matches all).
bool instance_selected(const std::string& name);

/// Edges per churn batch from GRAFTMATCH_BATCH / --batch
/// (0 = unset: the bench runs its default batch-size sweep).
int churn_batch_size();

/// Churn batches per cell from GRAFTMATCH_BATCHES / --batches
/// (default `fallback`).
int churn_batch_count(int fallback);

/// Churn-window fraction from GRAFTMATCH_WINDOW / --window, clamped by
/// the flag parser to (0, 1] (default `fallback`).
double churn_window_fraction(double fallback);

/// Kernelization mode from GRAFTMATCH_REDUCE / --reduce (default
/// kNone). Unknown values print an error and exit(2).
ReduceMode reduce_mode();

/// Sharding mode from GRAFTMATCH_SHARD / --shard (default kNone).
/// Unknown values print an error and exit(2).
ShardMode shard_mode();

/// Traversal-direction policy from GRAFTMATCH_DIRSEL / --dirsel
/// (default kFixed). Unknown values print an error and exit(2).
DirectionPolicy direction_policy();

/// Bottom-up kernel arm from GRAFTMATCH_KERNEL / --kernel (default
/// kBit). Unknown values print an error and exit(2).
BottomUpKernel bottom_up_kernel();

/// Build the selected initial matching for a graph via the engine's
/// initializer registry (honoring the bench seed and thread override).
/// Unknown initializer names print the registry's error and exit(2).
Matching make_initial_matching(const BipartiteGraph& g);

/// Print the standard bench header (binary name, substrate info,
/// workload scale) so every output file is self-describing.
void print_header(const std::string& bench_name, const std::string& what);

/// A generated suite instance, cached with its stats.
struct Workload {
  std::string name;
  std::string paper_name;
  GraphClass graph_class;
  BipartiteGraph graph;
  double matching_fraction = 0.0;  ///< 2|M*|/n, the paper's Table II column
};

/// Generate every suite instance at the current size factor.
/// When `with_matching_number` is set, computes the maximum matching
/// fraction for each graph (Table II's last column).
std::vector<Workload> make_suite_workloads(bool with_matching_number);

/// Generate a single named instance.
Workload make_workload(const std::string& name);

/// Mean and standard deviation of a sample.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd mean_std(const std::vector<double>& samples);

/// Plot-ready artifact writer: one CSV per bench under
/// $GRAFTMATCH_RESULTS_DIR (default "bench_results/", created on
/// demand). Columns are written with a header row; every figure bench
/// emits its series here in addition to the human-readable stdout.
class CsvWriter {
 public:
  /// Opens <results_dir>/<name>.csv and writes the header row.
  CsvWriter(const std::string& bench_name,
            const std::vector<std::string>& columns);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append one row; fields are written verbatim (quote your own
  /// commas). Must match the header's column count.
  void row(const std::vector<std::string>& fields);

  /// Convenience for numeric cells.
  static std::string cell(double value);
  static std::string cell(std::int64_t value);

  /// Path of the file being written (for the stdout footer).
  const std::string& path() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Time `run` (which must return RunStats) `runs` times on fresh
/// Karp-Sipser-initialized matchings; returns per-run total seconds and
/// the stats of the last run.
struct TimedResult {
  std::vector<double> seconds;
  RunStats last;
};
TimedResult time_matching_runs(
    const BipartiteGraph& g, int runs,
    const std::function<RunStats(const BipartiteGraph&, Matching&)>& run);

/// Time `runs` END-TO-END executions of registry solver `solver`
/// through engine::run_reduced with the given kernelization mode:
/// reduce, initialize (GRAFTMATCH_INIT), solve the kernel, and
/// reconstruct all fall inside the timed window, so the numbers answer
/// "was the pre-pass worth it" rather than "is the kernel solve
/// faster". kNone degenerates to init + solve on the original graph.
/// Same window with an explicit sharding arm: the runs route through
/// engine::run_sharded, so decompose/extract/solve/stitch all land
/// inside the timing. time_reduced_runs forwards here with the
/// GRAFTMATCH_SHARD mode, so every bench built on it honors --shard.
TimedResult time_sharded_runs(const BipartiteGraph& g, int runs,
                              const std::string& solver, ReduceMode reduce,
                              ShardMode shard);

TimedResult time_reduced_runs(const BipartiteGraph& g, int runs,
                              const std::string& solver, ReduceMode mode);

}  // namespace graftmatch::bench
