// Fig. 3 reproduction: relative performance of MS-BFS-Graft, PF and PR
// with 1 thread and with all available threads.
//
// For every graph, each algorithm's mean runtime over GRAFTMATCH_RUNS
// runs is reported relative to the slowest algorithm on that graph
// (slowest = 1.0, the paper's convention), followed by per-class and
// overall geometric means of MS-BFS-Graft's speedup over PF and PR.
//
// Expected shape (paper Sec. V-A): Graft ~5-11x over the others overall,
// with the biggest wins on the web class (low matching number) and the
// smallest on the scientific class.
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace graftmatch;
using namespace graftmatch::bench;

struct AlgoResult {
  double mean_seconds = 0.0;
};

double run_mean(const BipartiteGraph& g, int runs,
                const std::function<RunStats(const BipartiteGraph&,
                                             Matching&)>& run) {
  return mean_std(time_matching_runs(g, runs, run).seconds).mean;
}

}  // namespace

int main(int argc, char** argv) {
  bench_entry(argc, argv, "bench_fig3_relative_performance",
               "Fig. 3 (relative performance of matching algorithms with "
               "1 thread and all threads)");

  const int runs = run_count(3);
  const int max_threads = logical_cpu_count();
  const std::vector<Workload> workloads = make_suite_workloads(false);
  CsvWriter csv("fig3_relative_performance",
                {"threads", "instance", "class", "graft_seconds",
                 "pf_seconds", "pr_seconds"});

  // speedup_of_graft[class][competitor] accumulates log-speedups.
  std::map<std::string, std::map<std::string, std::vector<double>>> gains;

  for (const int threads : {1, max_threads}) {
    std::printf("--- %d thread%s (relative speedup; slowest algorithm on "
                "each graph = 1.0)\n",
                threads, threads == 1 ? "" : "s");
    std::printf("%-18s %12s %12s %12s   %s\n", "instance", "MS-BFS-Graft",
                "PF", "PR", "winner");

    for (const Workload& w : workloads) {
      RunConfig config;
      config.threads = threads;
      // PR tuning per the paper: relabel frequency 2 serial, 16 parallel.
      RunConfig pr_config = config;
      pr_config.pr_relabel_frequency = threads == 1 ? 2 : 16;

      const engine::SolverInfo& graft = engine::find_solver("graft");
      const engine::SolverInfo& pf = engine::find_solver("pf");
      const engine::SolverInfo& pr = engine::find_solver("pr");
      const double graft_s = run_mean(
          w.graph, runs, [&](const BipartiteGraph& g, Matching& m) {
            return graft.run(g, m, config);
          });
      const double pf_s = run_mean(
          w.graph, runs, [&](const BipartiteGraph& g, Matching& m) {
            return pf.run(g, m, config);
          });
      const double pr_s = run_mean(
          w.graph, runs, [&](const BipartiteGraph& g, Matching& m) {
            return pr.run(g, m, pr_config);
          });

      const double slowest = std::max({graft_s, pf_s, pr_s});
      const char* winner = graft_s <= pf_s && graft_s <= pr_s
                               ? "Graft"
                               : (pf_s <= pr_s ? "PF" : "PR");
      std::printf("%-18s %12.2f %12.2f %12.2f   %s\n", w.name.c_str(),
                  slowest / graft_s, slowest / pf_s, slowest / pr_s, winner);
      csv.row({CsvWriter::cell(static_cast<std::int64_t>(threads)), w.name,
               to_string(w.graph_class), CsvWriter::cell(graft_s),
               CsvWriter::cell(pf_s), CsvWriter::cell(pr_s)});

      if (threads == max_threads) {
        const std::string cls = to_string(w.graph_class);
        gains[cls]["PF"].push_back(pf_s / graft_s);
        gains[cls]["PR"].push_back(pr_s / graft_s);
        gains["ALL"]["PF"].push_back(pf_s / graft_s);
        gains["ALL"]["PR"].push_back(pr_s / graft_s);
      }
    }
    std::printf("\n");
  }

  std::printf("--- MS-BFS-Graft speedup over competitors at %d threads "
              "(geometric mean)\n",
              max_threads);
  std::printf("%-12s %10s %10s\n", "class", "vs PF", "vs PR");
  for (const auto& [cls, per_algo] : gains) {
    double log_pf = 0.0;
    double log_pr = 0.0;
    for (const double v : per_algo.at("PF")) log_pf += std::log(v);
    for (const double v : per_algo.at("PR")) log_pr += std::log(v);
    std::printf("%-12s %9.2fx %9.2fx\n", cls.c_str(),
                std::exp(log_pf / static_cast<double>(per_algo.at("PF").size())),
                std::exp(log_pr / static_cast<double>(per_algo.at("PR").size())));
  }
  std::printf("csv: %s\n", csv.path().c_str());
  return 0;
}
