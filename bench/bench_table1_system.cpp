// Table I reproduction: description of the evaluation system.
//
// The paper's Table I lists Mirasol (40-core Westmere-EX, 4 sockets,
// 256 GB) and one Edison node (24-core Ivy Bridge, 64 GB). This bench
// prints the same fields for the reproduction substrate and states the
// substitution explicitly.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  bench::bench_entry(argc, argv, "bench_table1_system",
                      "Table I (description of the systems)");

  const SystemInfo info = query_system_info();
  std::printf("%s", format_system_info(info).c_str());

  std::printf("\npaper systems (for reference):\n");
  std::printf("  Mirasol: Intel E7-4870 Westmere-EX, 4 sockets x 10 cores, "
              "2.4 GHz, 256 GB, gcc 4.4.7 -O2\n");
  std::printf("  Edison : Intel E5-2695 v2 Ivy Bridge, 2 sockets x 12 cores, "
              "2.4 GHz, 64 GB, icc 14.0.2 -O2\n");
  std::printf("\nsubstitution: single-node container; algorithmic metrics "
              "(edges, phases, path lengths)\nare hardware-independent; "
              "wall-clock scaling sections are labelled accordingly.\n");
  return 0;
}
