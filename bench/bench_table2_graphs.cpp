// Table II reproduction: the input-graph inventory.
//
// The paper's Table II lists, per instance: the application class, the
// number of vertices and edges, and the matching number as a fraction of
// |V|. We print the same columns for the synthetic stand-ins, plus the
// quality of the Karp-Sipser and randomized-greedy initializers so the
// initializer substitution (see DESIGN.md) is visible in the output.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_table2_graphs",
               "Table II (description of the input graphs)");

  std::printf("%-18s %-18s %-11s %10s %11s %7s %8s %8s %8s\n", "instance",
              "stands in for", "class", "|V|", "|E|", "deg", "max/|V|",
              "KS/max", "rg/max");
  std::printf("%s\n", std::string(112, '-').c_str());

  for (const SuiteInstance& instance : benchmark_suite()) {
    const BipartiteGraph g = instance.factory(size_factor(), seed());
    const std::int64_t maximum = maximum_matching_cardinality(g);
    const Matching ks = karp_sipser(g, seed());
    const Matching rg = randomized_greedy(g, seed());
    const double n = static_cast<double>(g.num_x() + g.num_y());

    std::printf("%-18s %-18s %-11s %10lld %11lld %7.2f %8.3f %8.3f %8.3f\n",
                instance.name.c_str(), instance.paper_name.c_str(),
                to_string(instance.graph_class).c_str(),
                static_cast<long long>(g.num_x() + g.num_y()),
                static_cast<long long>(g.num_edges()),
                static_cast<double>(g.num_edges()) /
                    static_cast<double>(g.num_x()),
                2.0 * static_cast<double>(maximum) / n,
                static_cast<double>(ks.cardinality()) /
                    static_cast<double>(maximum),
                static_cast<double>(rg.cardinality()) /
                    static_cast<double>(maximum));
  }

  std::printf("\nmax/|V| = matching number as a fraction of all vertices "
              "(the paper's convention).\nKS/max and rg/max = initializer "
              "quality; the figure benches start from rg (see DESIGN.md).\n");
  return 0;
}
