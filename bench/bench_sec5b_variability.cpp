// Sec. V-B reproduction: variation in parallel runtimes.
//
// The paper defines parallel sensitivity psi = (stddev / mean) * 100
// over 10 runs at full thread count and reports averages of 6% for
// MS-BFS-Graft vs 17% (PF) and 10% (PR) -- the fine-grained parallelism
// of Graft balances work more evenly than DFS-tree-per-thread PF.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_sec5b_variability",
               "Sec. V-B (runtime variability psi = sigma/mu over repeated "
               "parallel runs)");

  const int runs = run_count(10);
  const std::vector<Workload> workloads = make_suite_workloads(false);
  CsvWriter csv("sec5b_variability",
                {"instance", "algorithm", "run", "seconds"});

  RunConfig config;  // all threads
  RunConfig pr_config = config;
  pr_config.pr_relabel_frequency = 16;

  std::printf("%-18s %10s %10s %10s\n", "instance", "Graft psi%", "PF psi%",
              "PR psi%");
  std::printf("%s\n", std::string(52, '-').c_str());

  double sum_graft = 0.0;
  double sum_pf = 0.0;
  double sum_pr = 0.0;
  for (const Workload& w : workloads) {
    // Per-run samples land in the CSV so psi can be recomputed (or the
    // distribution replotted) without rerunning the bench.
    const auto psi = [&](const char* algorithm,
                         const std::vector<double>& seconds) {
      for (std::size_t r = 0; r < seconds.size(); ++r) {
        csv.row({w.name, algorithm,
                 CsvWriter::cell(static_cast<std::int64_t>(r)),
                 CsvWriter::cell(seconds[r])});
      }
      const MeanStd ms = mean_std(seconds);
      return ms.mean > 0 ? 100.0 * ms.stddev / ms.mean : 0.0;
    };
    const double graft_psi = psi(
        "graft",
        time_matching_runs(w.graph, runs,
                           [&](const BipartiteGraph& g, Matching& m) {
                             return ms_bfs_graft(g, m, config);
                           })
            .seconds);
    const double pf_psi =
        psi("pf",
            time_matching_runs(w.graph, runs,
                               [&](const BipartiteGraph& g, Matching& m) {
                                 return pothen_fan(g, m, config);
                               })
                .seconds);
    const double pr_psi =
        psi("pr",
            time_matching_runs(w.graph, runs,
                               [&](const BipartiteGraph& g, Matching& m) {
                                 return push_relabel(g, m, pr_config);
                               })
                .seconds);
    std::printf("%-18s %10.1f %10.1f %10.1f\n", w.name.c_str(), graft_psi,
                pf_psi, pr_psi);
    sum_graft += graft_psi;
    sum_pf += pf_psi;
    sum_pr += pr_psi;
  }

  const double count = static_cast<double>(workloads.size());
  std::printf("%s\n%-18s %10.1f %10.1f %10.1f\n", std::string(52, '-').c_str(),
              "average", sum_graft / count, sum_pf / count, sum_pr / count);
  std::printf("csv: %s\n", csv.path().c_str());
  std::printf("\npaper averages at 40 threads: Graft 6%%, PF 17%%, PR "
              "10%%.\n");
  return 0;
}
