// Fig. 8 reproduction: BFS frontier size per level, with and without
// tree grafting, on the coPapersDBLP stand-in.
//
// The paper plots two mid-run phases and shows that grafting makes each
// phase START from a large frontier that monotonically shrinks, whereas
// without grafting each phase starts small (the unmatched vertices),
// grows, then shrinks -- taller forests, more synchronization points,
// more traversal work (larger area under the curve). Grafting engages
// once few augmenting paths are found per phase (early phases rebuild,
// as Sec. III-B predicts), so the detailed curves below show two
// late-run phases.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace graftmatch;
using namespace graftmatch::bench;

using PhaseMap = std::map<std::int64_t, std::vector<FrontierSample>>;

PhaseMap group_phases(const RunStats& stats) {
  PhaseMap phases;
  for (const FrontierSample& sample : stats.frontier_trace) {
    phases[sample.phase].push_back(sample);
  }
  return phases;
}

void print_summary(const RunStats& stats, const PhaseMap& phases) {
  std::printf("  %-7s %7s %10s %10s %10s\n", "phase", "levels", "start|F|",
              "peak|F|", "volume");
  for (const auto& [phase, samples] : phases) {
    std::int64_t peak = 0;
    std::int64_t volume = 0;
    for (const FrontierSample& s : samples) {
      peak = std::max(peak, s.frontier_size);
      volume += s.frontier_size;
    }
    std::printf("  %-7lld %7zu %10lld %10lld %10lld\n",
                static_cast<long long>(phase), samples.size(),
                static_cast<long long>(samples.front().frontier_size),
                static_cast<long long>(peak),
                static_cast<long long>(volume));
  }
  std::int64_t total_volume = 0;
  for (const FrontierSample& s : stats.frontier_trace) {
    total_volume += s.frontier_size;
  }
  std::printf("  total: %lld phases, frontier volume %lld, edges traversed "
              "%lld\n",
              static_cast<long long>(stats.phases),
              static_cast<long long>(total_volume),
              static_cast<long long>(stats.edges_traversed));
}

void print_curves(const PhaseMap& phases) {
  // Two representative mid/late phases (where grafting has engaged).
  if (phases.empty()) return;
  const std::int64_t last = phases.rbegin()->first;
  const std::int64_t from = std::max<std::int64_t>(1, (2 * last) / 3);
  std::int64_t shown = 0;
  for (const auto& [phase, samples] : phases) {
    if (phase < from || shown >= 2) continue;
    ++shown;
    std::printf("  phase %lld curve: ", static_cast<long long>(phase));
    for (const FrontierSample& s : samples) {
      std::printf("%lld%c ", static_cast<long long>(s.frontier_size),
                  s.bottom_up ? 'b' : 't');
    }
    std::printf("\n");
  }
}

}  // namespace

/// Dump every frontier sample of one variant as CSV rows, and -- in
/// traced builds -- cross-check the samples against the trace's
/// frontier counter events (same count, sizes, and directions; the two
/// record the identical per-level decision from independent paths).
void emit_and_check(const char* variant, const RunStats& stats,
                    CsvWriter& csv) {
  for (const FrontierSample& s : stats.frontier_trace) {
    csv.row({variant, CsvWriter::cell(s.phase), CsvWriter::cell(s.level),
             CsvWriter::cell(s.frontier_size),
             std::string(s.bottom_up ? "1" : "0")});
  }
  if (!stats.obs.collected) return;
  const obs::RunTrace& trace = obs::last_run();
  std::size_t checked = 0;
  bool ok = true;
  for (const obs::Event& event : trace.events) {
    if (event.kind != obs::EventKind::kCounter ||
        std::string_view(event.name->name) != "frontier") {
      continue;
    }
    if (checked >= stats.frontier_trace.size()) {
      ok = false;
      break;
    }
    const FrontierSample& sample = stats.frontier_trace[checked++];
    ok = ok && sample.frontier_size == event.arg0 &&
         sample.bottom_up == (event.arg1 != 0);
  }
  if (!ok || checked != stats.frontier_trace.size()) {
    std::printf("  WARN %s: trace frontier counters disagree with "
                "frontier_trace (%zu events vs %zu samples)\n",
                variant, checked, stats.frontier_trace.size());
  }
}

int main(int argc, char** argv) {
  bench_entry(argc, argv, "bench_fig8_frontier_trace",
               "Fig. 8 (frontier size per BFS level, with and without "
               "grafting, coPapersDBLP stand-in)");

  if (obs::compiled()) obs::arm();
  CsvWriter csv("fig8_frontier_trace",
                {"variant", "phase", "level", "frontier_size", "bottom_up"});

  const Workload w = make_workload("copapers-like");
  const Matching initial = make_initial_matching(w.graph);

  {
    RunConfig config;
    config.tree_grafting = true;
    config.collect_frontier_trace = true;
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(w.graph, m, config);
    const PhaseMap phases = group_phases(stats);
    std::printf("WITH tree grafting:\n");
    print_summary(stats, phases);
    print_curves(phases);
    emit_and_check("graft", stats, csv);
  }
  std::printf("\n");
  {
    RunConfig config;
    config.tree_grafting = false;
    config.collect_frontier_trace = true;
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(w.graph, m, config);
    const PhaseMap phases = group_phases(stats);
    std::printf("WITHOUT tree grafting (plain MS-BFS + DirOpt):\n");
    print_summary(stats, phases);
    print_curves(phases);
    emit_and_check("no_graft", stats, csv);
  }
  std::printf("csv: %s\n", csv.path().c_str());

  std::printf("\nexpected shape: in late phases, grafting starts from a "
              "large grafted frontier\n(start|F| >> unmatched count) that "
              "shrinks monotonically; without it each phase\nre-grows "
              "from the unmatched vertices (small start, taller "
              "forests).\n");
  return 0;
}
