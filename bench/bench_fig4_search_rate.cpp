// Fig. 4 reproduction: search rate (MTEPS) of MS-BFS-Graft vs
// Pothen-Fan on every suite graph.
//
// Search rate = traversed edges / runtime (augmentation time included),
// exactly the paper's Sec. V-C definition. Expected shape: Graft's rate
// is 2-12x PF's, with the largest gaps on low-matching-number graphs
// (the paper highlights wikipedia 12x, web-Google 10x).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;
  using namespace graftmatch::bench;
  bench_entry(argc, argv, "bench_fig4_search_rate",
               "Fig. 4 (search rate in MTEPS, MS-BFS-Graft vs Pothen-Fan)");

  const int runs = run_count(3);
  const std::vector<Workload> workloads = make_suite_workloads(false);
  // The graft arm honors --dirsel/--kernel so an A/B is two invocations
  // of this bench with the same roster (the policy/arm land in the CSV
  // for the join); Pothen-Fan has no direction switch and ignores both.
  const DirectionPolicy dirsel = direction_policy();
  const BottomUpKernel kernel = bottom_up_kernel();
  CsvWriter csv("fig4_search_rate",
                {"instance", "class", "dirsel", "kernel", "graft_mteps",
                 "pf_mteps", "cardinality"});

  std::printf("%-18s %-11s %14s %14s %8s\n", "instance", "class",
              "Graft MTEPS", "PF MTEPS", "ratio");
  std::printf("%s\n", std::string(70, '-').c_str());

  // Consistency gate: both solvers compute MAXIMUM matchings, so their
  // cardinalities must agree on every instance. A perf number from a
  // run that got the answer wrong is worse than no number, so CI treats
  // a mismatch as a hard failure (nonzero exit).
  int mismatches = 0;
  for (const Workload& w : workloads) {
    RunConfig config;  // all threads
    config.direction_policy = dirsel;
    config.bottom_up_kernel = kernel;
    double graft_rate = 0.0;
    double pf_rate = 0.0;
    std::int64_t graft_cardinality = 0;
    std::int64_t pf_cardinality = 0;
    {
      const TimedResult timed = time_matching_runs(
          w.graph, runs, [&](const BipartiteGraph& g, Matching& m) {
            return ms_bfs_graft(g, m, config);
          });
      graft_rate = timed.last.mteps();
      graft_cardinality = timed.last.final_cardinality;
    }
    {
      const TimedResult timed = time_matching_runs(
          w.graph, runs, [&](const BipartiteGraph& g, Matching& m) {
            return pothen_fan(g, m, config);
          });
      pf_rate = timed.last.mteps();
      pf_cardinality = timed.last.final_cardinality;
    }
    if (graft_cardinality != pf_cardinality) {
      ++mismatches;
      std::fprintf(stderr,
                   "CARDINALITY MISMATCH on %s: ms_bfs_graft=%lld "
                   "pothen_fan=%lld\n",
                   w.name.c_str(),
                   static_cast<long long>(graft_cardinality),
                   static_cast<long long>(pf_cardinality));
    }
    std::printf("%-18s %-11s %14.2f %14.2f %7.2fx\n", w.name.c_str(),
                to_string(w.graph_class).c_str(), graft_rate, pf_rate,
                pf_rate > 0 ? graft_rate / pf_rate : 0.0);
    csv.row({w.name, to_string(w.graph_class), to_string(dirsel),
             to_string(kernel), CsvWriter::cell(graft_rate),
             CsvWriter::cell(pf_rate), CsvWriter::cell(graft_cardinality)});
  }
  std::printf("csv: %s\n", csv.path().c_str());

  std::printf("\nratio > 1 means MS-BFS-Graft searches faster; the paper "
              "reports 2-12x with the\nlargest ratios on the web class.\n");
  if (mismatches != 0) {
    std::fprintf(stderr, "%d instance(s) failed the cardinality gate\n",
                 mismatches);
    return 1;
  }
  return 0;
}
