file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_algorithm_properties.dir/bench_fig1_algorithm_properties.cpp.o"
  "CMakeFiles/bench_fig1_algorithm_properties.dir/bench_fig1_algorithm_properties.cpp.o.d"
  "bench_fig1_algorithm_properties"
  "bench_fig1_algorithm_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_algorithm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
