# Empty dependencies file for bench_fig1_algorithm_properties.
# This may be replaced when dependencies are built.
