file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5b_variability.dir/bench_sec5b_variability.cpp.o"
  "CMakeFiles/bench_sec5b_variability.dir/bench_sec5b_variability.cpp.o.d"
  "bench_sec5b_variability"
  "bench_sec5b_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5b_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
