# Empty compiler generated dependencies file for bench_sec5b_variability.
# This may be replaced when dependencies are built.
