file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_frontier_trace.dir/bench_fig8_frontier_trace.cpp.o"
  "CMakeFiles/bench_fig8_frontier_trace.dir/bench_fig8_frontier_trace.cpp.o.d"
  "bench_fig8_frontier_trace"
  "bench_fig8_frontier_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_frontier_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
