file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_relative_performance.dir/bench_fig3_relative_performance.cpp.o"
  "CMakeFiles/bench_fig3_relative_performance.dir/bench_fig3_relative_performance.cpp.o.d"
  "bench_fig3_relative_performance"
  "bench_fig3_relative_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_relative_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
