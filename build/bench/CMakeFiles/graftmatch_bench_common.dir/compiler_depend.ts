# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for graftmatch_bench_common.
