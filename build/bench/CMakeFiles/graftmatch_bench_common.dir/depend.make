# Empty dependencies file for graftmatch_bench_common.
# This may be replaced when dependencies are built.
