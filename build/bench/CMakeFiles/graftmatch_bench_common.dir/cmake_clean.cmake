file(REMOVE_RECURSE
  "CMakeFiles/graftmatch_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/graftmatch_bench_common.dir/bench_common.cpp.o.d"
  "libgraftmatch_bench_common.a"
  "libgraftmatch_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graftmatch_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
