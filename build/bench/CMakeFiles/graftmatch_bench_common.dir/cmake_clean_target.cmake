file(REMOVE_RECURSE
  "libgraftmatch_bench_common.a"
)
