# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_table1_system "/root/repo/build/bench/bench_table1_system")
set_tests_properties(smoke_bench_table1_system PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table2_graphs "/root/repo/build/bench/bench_table2_graphs")
set_tests_properties(smoke_bench_table2_graphs PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig1_algorithm_properties "/root/repo/build/bench/bench_fig1_algorithm_properties")
set_tests_properties(smoke_bench_fig1_algorithm_properties PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig3_relative_performance "/root/repo/build/bench/bench_fig3_relative_performance")
set_tests_properties(smoke_bench_fig3_relative_performance PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig4_search_rate "/root/repo/build/bench/bench_fig4_search_rate")
set_tests_properties(smoke_bench_fig4_search_rate PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig5_strong_scaling "/root/repo/build/bench/bench_fig5_strong_scaling")
set_tests_properties(smoke_bench_fig5_strong_scaling PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig6_breakdown "/root/repo/build/bench/bench_fig6_breakdown")
set_tests_properties(smoke_bench_fig6_breakdown PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig7_contributions "/root/repo/build/bench/bench_fig7_contributions")
set_tests_properties(smoke_bench_fig7_contributions PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig8_frontier_trace "/root/repo/build/bench/bench_fig8_frontier_trace")
set_tests_properties(smoke_bench_fig8_frontier_trace PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_sec5b_variability "/root/repo/build/bench/bench_sec5b_variability")
set_tests_properties(smoke_bench_sec5b_variability PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation_alpha "/root/repo/build/bench/bench_ablation_alpha")
set_tests_properties(smoke_bench_ablation_alpha PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation_init "/root/repo/build/bench/bench_ablation_init")
set_tests_properties(smoke_bench_ablation_init PROPERTIES  ENVIRONMENT "GRAFTMATCH_SIZE=0.004;GRAFTMATCH_RUNS=1;GRAFTMATCH_RESULTS_DIR=/root/repo/build/bench/smoke_results" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
