file(REMOVE_RECURSE
  "CMakeFiles/matching_tool.dir/matching_tool.cpp.o"
  "CMakeFiles/matching_tool.dir/matching_tool.cpp.o.d"
  "matching_tool"
  "matching_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
