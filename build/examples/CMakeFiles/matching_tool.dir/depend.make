# Empty dependencies file for matching_tool.
# This may be replaced when dependencies are built.
