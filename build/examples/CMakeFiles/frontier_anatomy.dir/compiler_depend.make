# Empty compiler generated dependencies file for frontier_anatomy.
# This may be replaced when dependencies are built.
