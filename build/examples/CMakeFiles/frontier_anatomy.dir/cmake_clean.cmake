file(REMOVE_RECURSE
  "CMakeFiles/frontier_anatomy.dir/frontier_anatomy.cpp.o"
  "CMakeFiles/frontier_anatomy.dir/frontier_anatomy.cpp.o.d"
  "frontier_anatomy"
  "frontier_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontier_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
