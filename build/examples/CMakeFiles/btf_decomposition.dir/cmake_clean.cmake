file(REMOVE_RECURSE
  "CMakeFiles/btf_decomposition.dir/btf_decomposition.cpp.o"
  "CMakeFiles/btf_decomposition.dir/btf_decomposition.cpp.o.d"
  "btf_decomposition"
  "btf_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btf_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
