# Empty dependencies file for btf_decomposition.
# This may be replaced when dependencies are built.
