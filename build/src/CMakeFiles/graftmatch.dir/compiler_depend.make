# Empty compiler generated dependencies file for graftmatch.
# This may be replaced when dependencies are built.
