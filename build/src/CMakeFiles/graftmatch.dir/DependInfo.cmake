
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graftmatch/baselines/hopcroft_karp.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/hopcroft_karp.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/hopcroft_karp.cpp.o.d"
  "/root/repo/src/graftmatch/baselines/pothen_fan.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/pothen_fan.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/pothen_fan.cpp.o.d"
  "/root/repo/src/graftmatch/baselines/push_relabel.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/push_relabel.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/push_relabel.cpp.o.d"
  "/root/repo/src/graftmatch/baselines/ss_bfs.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/ss_bfs.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/ss_bfs.cpp.o.d"
  "/root/repo/src/graftmatch/baselines/ss_dfs.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/ss_dfs.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/baselines/ss_dfs.cpp.o.d"
  "/root/repo/src/graftmatch/core/ms_bfs_graft.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/core/ms_bfs_graft.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/core/ms_bfs_graft.cpp.o.d"
  "/root/repo/src/graftmatch/core/run_stats.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/core/run_stats.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/core/run_stats.cpp.o.d"
  "/root/repo/src/graftmatch/dm/btf.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/dm/btf.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/dm/btf.cpp.o.d"
  "/root/repo/src/graftmatch/dm/dulmage_mendelsohn.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/dm/dulmage_mendelsohn.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/dm/dulmage_mendelsohn.cpp.o.d"
  "/root/repo/src/graftmatch/gen/chung_lu.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/chung_lu.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/chung_lu.cpp.o.d"
  "/root/repo/src/graftmatch/gen/erdos_renyi.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/erdos_renyi.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/erdos_renyi.cpp.o.d"
  "/root/repo/src/graftmatch/gen/grid.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/grid.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/grid.cpp.o.d"
  "/root/repo/src/graftmatch/gen/planted.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/planted.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/planted.cpp.o.d"
  "/root/repo/src/graftmatch/gen/rmat.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/rmat.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/rmat.cpp.o.d"
  "/root/repo/src/graftmatch/gen/road.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/road.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/road.cpp.o.d"
  "/root/repo/src/graftmatch/gen/sbm.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/sbm.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/sbm.cpp.o.d"
  "/root/repo/src/graftmatch/gen/suite.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/suite.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/suite.cpp.o.d"
  "/root/repo/src/graftmatch/gen/webcrawl.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/webcrawl.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/gen/webcrawl.cpp.o.d"
  "/root/repo/src/graftmatch/graph/bipartite_graph.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/bipartite_graph.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/bipartite_graph.cpp.o.d"
  "/root/repo/src/graftmatch/graph/edge_list.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/edge_list.cpp.o.d"
  "/root/repo/src/graftmatch/graph/graph_stats.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/graph_stats.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/graph_stats.cpp.o.d"
  "/root/repo/src/graftmatch/graph/matching_io.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/matching_io.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/matching_io.cpp.o.d"
  "/root/repo/src/graftmatch/graph/mm_io.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/mm_io.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/mm_io.cpp.o.d"
  "/root/repo/src/graftmatch/graph/transforms.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/transforms.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/graph/transforms.cpp.o.d"
  "/root/repo/src/graftmatch/init/greedy.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/init/greedy.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/init/greedy.cpp.o.d"
  "/root/repo/src/graftmatch/init/karp_sipser.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/init/karp_sipser.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/init/karp_sipser.cpp.o.d"
  "/root/repo/src/graftmatch/init/parallel_karp_sipser.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/init/parallel_karp_sipser.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/init/parallel_karp_sipser.cpp.o.d"
  "/root/repo/src/graftmatch/runtime/affinity.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/runtime/affinity.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/runtime/affinity.cpp.o.d"
  "/root/repo/src/graftmatch/runtime/system_info.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/runtime/system_info.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/runtime/system_info.cpp.o.d"
  "/root/repo/src/graftmatch/runtime/timer.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/runtime/timer.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/runtime/timer.cpp.o.d"
  "/root/repo/src/graftmatch/verify/koenig.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/verify/koenig.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/verify/koenig.cpp.o.d"
  "/root/repo/src/graftmatch/verify/validate.cpp" "src/CMakeFiles/graftmatch.dir/graftmatch/verify/validate.cpp.o" "gcc" "src/CMakeFiles/graftmatch.dir/graftmatch/verify/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
