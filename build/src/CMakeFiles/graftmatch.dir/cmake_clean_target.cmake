file(REMOVE_RECURSE
  "libgraftmatch.a"
)
