# Empty compiler generated dependencies file for test_ms_bfs_graft.
# This may be replaced when dependencies are built.
