file(REMOVE_RECURSE
  "CMakeFiles/test_ms_bfs_graft.dir/test_ms_bfs_graft.cpp.o"
  "CMakeFiles/test_ms_bfs_graft.dir/test_ms_bfs_graft.cpp.o.d"
  "test_ms_bfs_graft"
  "test_ms_bfs_graft.pdb"
  "test_ms_bfs_graft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ms_bfs_graft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
