# Empty dependencies file for test_dm_btf.
# This may be replaced when dependencies are built.
