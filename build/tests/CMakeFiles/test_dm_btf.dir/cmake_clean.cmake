file(REMOVE_RECURSE
  "CMakeFiles/test_dm_btf.dir/test_dm_btf.cpp.o"
  "CMakeFiles/test_dm_btf.dir/test_dm_btf.cpp.o.d"
  "test_dm_btf"
  "test_dm_btf.pdb"
  "test_dm_btf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dm_btf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
