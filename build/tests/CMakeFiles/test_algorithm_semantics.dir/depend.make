# Empty dependencies file for test_algorithm_semantics.
# This may be replaced when dependencies are built.
