file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm_semantics.dir/test_algorithm_semantics.cpp.o"
  "CMakeFiles/test_algorithm_semantics.dir/test_algorithm_semantics.cpp.o.d"
  "test_algorithm_semantics"
  "test_algorithm_semantics.pdb"
  "test_algorithm_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
