file(REMOVE_RECURSE
  "CMakeFiles/test_planted_sbm.dir/test_planted_sbm.cpp.o"
  "CMakeFiles/test_planted_sbm.dir/test_planted_sbm.cpp.o.d"
  "test_planted_sbm"
  "test_planted_sbm.pdb"
  "test_planted_sbm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planted_sbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
