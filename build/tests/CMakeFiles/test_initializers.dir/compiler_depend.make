# Empty compiler generated dependencies file for test_initializers.
# This may be replaced when dependencies are built.
