file(REMOVE_RECURSE
  "CMakeFiles/test_initializers.dir/test_initializers.cpp.o"
  "CMakeFiles/test_initializers.dir/test_initializers.cpp.o.d"
  "test_initializers"
  "test_initializers.pdb"
  "test_initializers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_initializers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
