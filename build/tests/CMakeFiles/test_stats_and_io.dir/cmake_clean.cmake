file(REMOVE_RECURSE
  "CMakeFiles/test_stats_and_io.dir/test_stats_and_io.cpp.o"
  "CMakeFiles/test_stats_and_io.dir/test_stats_and_io.cpp.o.d"
  "test_stats_and_io"
  "test_stats_and_io.pdb"
  "test_stats_and_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_and_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
