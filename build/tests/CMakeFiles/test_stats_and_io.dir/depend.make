# Empty dependencies file for test_stats_and_io.
# This may be replaced when dependencies are built.
