# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_prng[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_mm_io[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_initializers[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_ms_bfs_graft[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_dm_btf[1]_include.cmake")
include("/root/repo/build/tests/test_stats_and_io[1]_include.cmake")
include("/root/repo/build/tests/test_exhaustive_small[1]_include.cmake")
include("/root/repo/build/tests/test_planted_sbm[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_algorithm_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
